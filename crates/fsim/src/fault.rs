//! Failure injection: lost I/O-server connections.
//!
//! Paper §5.6 observation 5: "It is important to tolerate server connection
//! failures on a cloud platform for production runs. We experienced lost
//! connections to the I/O server, causing data corruption, in around 1h of
//! experiments during training."  The executor can inject such failures so
//! the training pipeline and the tests can exercise retry accounting.

use acic_cloudsim::rng::SplitMix64;

/// Failure-injection plan for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that any given I/O phase loses a server connection.
    pub phase_fail_prob: f64,
    /// Wall-clock penalty of detecting the loss and retrying, seconds
    /// (TCP timeout + remount + replay of the interrupted requests).
    pub retry_penalty_secs: f64,
}

impl FaultPlan {
    /// No failures (the default for all experiments).
    pub const NONE: FaultPlan = FaultPlan { phase_fail_prob: 0.0, retry_penalty_secs: 0.0 };

    /// Roughly the paper's observed rate: about one lost connection per
    /// hour of experiments, i.e. a fraction of a percent of phases.
    pub fn papers_observed_rate() -> Self {
        Self { phase_fail_prob: 0.004, retry_penalty_secs: 35.0 }
    }

    /// Sample whether this phase fails; returns the added penalty.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        if self.phase_fail_prob > 0.0 && rng.next_f64() < self.phase_fail_prob {
            self.retry_penalty_secs
        } else {
            0.0
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert_eq!(FaultPlan::NONE.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn certain_failure_always_fires() {
        let plan = FaultPlan { phase_fail_prob: 1.0, retry_penalty_secs: 30.0 };
        let mut rng = SplitMix64::new(2);
        assert_eq!(plan.sample(&mut rng), 30.0);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan { phase_fail_prob: 0.1, retry_penalty_secs: 1.0 };
        let mut rng = SplitMix64::new(3);
        let fired = (0..10_000).filter(|_| plan.sample(&mut rng) > 0.0).count();
        assert!((800..1200).contains(&fired), "fired {fired}/10000");
    }
}
