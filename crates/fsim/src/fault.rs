//! Failure injection: lost I/O-server connections.
//!
//! Paper §5.6 observation 5: "It is important to tolerate server connection
//! failures on a cloud platform for production runs. We experienced lost
//! connections to the I/O server, causing data corruption, in around 1h of
//! experiments during training."  The executor can inject such failures so
//! the training pipeline and the tests can exercise retry accounting.
//!
//! A fired fault takes one of two forms, mirroring what the authors saw:
//! most lost connections are *tolerated* — the client times out, remounts
//! and replays, costing [`FaultPlan::retry_penalty_secs`] of wall clock —
//! but a fraction corrupt in-flight data and *abort* the run entirely
//! ([`FaultPlan::abort_prob`]), surfacing as
//! [`acic_cloudsim::error::CloudSimError::InjectedFault`] so the caller
//! (the trainer's retry loop) must re-run from scratch.

use acic_cloudsim::rng::SplitMix64;

/// Failure-injection plan for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that any given I/O phase loses a server connection.
    pub phase_fail_prob: f64,
    /// Wall-clock penalty of detecting the loss and retrying, seconds
    /// (TCP timeout + remount + replay of the interrupted requests).
    pub retry_penalty_secs: f64,
    /// Probability that a fired fault corrupts data and aborts the whole
    /// run (vs. being absorbed as a retry penalty).
    pub abort_prob: f64,
}

/// What an I/O phase experienced under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// No connection loss.
    None,
    /// Connection lost but tolerated; the phase pays the penalty.
    Degraded {
        /// Added wall-clock, seconds.
        penalty_secs: f64,
    },
    /// Connection lost with data corruption; the run cannot continue.
    Abort,
}

impl FaultPlan {
    /// No failures (the default for all experiments).
    pub const NONE: FaultPlan =
        FaultPlan { phase_fail_prob: 0.0, retry_penalty_secs: 0.0, abort_prob: 0.0 };

    /// Roughly the paper's observed rate: about one lost connection per
    /// hour of experiments, i.e. a fraction of a percent of phases, with a
    /// quarter of them corrupting data badly enough to force a re-run.
    pub fn papers_observed_rate() -> Self {
        Self { phase_fail_prob: 0.004, retry_penalty_secs: 35.0, abort_prob: 0.25 }
    }

    /// Parse a CLI-facing spec: `none`, `paper-rate` (or `paper`), or
    /// `PROB[,PENALTY_SECS[,ABORT_PROB]]` (e.g. `0.01,35,0.25`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        match spec.trim() {
            "none" | "off" | "" => return Ok(FaultPlan::NONE),
            "paper-rate" | "paper" => return Ok(FaultPlan::papers_observed_rate()),
            _ => {}
        }
        let mut plan = FaultPlan { retry_penalty_secs: 35.0, ..FaultPlan::NONE };
        let fields: Vec<&str> = spec.split(',').collect();
        if fields.len() > 3 {
            return Err(format!("invalid fault spec {spec:?}: expected PROB[,PENALTY[,ABORT]]"));
        }
        let num = |s: &str, what: &str| -> Result<f64, String> {
            s.trim()
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("invalid fault {what} {s:?} in spec {spec:?}"))
        };
        plan.phase_fail_prob = num(fields[0], "probability")?;
        if let Some(p) = fields.get(1) {
            plan.retry_penalty_secs = num(p, "penalty")?;
        }
        if let Some(a) = fields.get(2) {
            plan.abort_prob = num(a, "abort probability")?;
        }
        if plan.phase_fail_prob > 1.0 || plan.abort_prob > 1.0 {
            return Err(format!("invalid fault spec {spec:?}: probabilities must be <= 1"));
        }
        Ok(plan)
    }

    /// Sample what happens to one I/O phase.
    pub fn sample_event(&self, rng: &mut SplitMix64) -> FaultEvent {
        if self.phase_fail_prob > 0.0 && rng.next_f64() < self.phase_fail_prob {
            if rng.next_f64() < self.abort_prob {
                FaultEvent::Abort
            } else {
                FaultEvent::Degraded { penalty_secs: self.retry_penalty_secs }
            }
        } else {
            FaultEvent::None
        }
    }

    /// Sample whether this phase fails; returns the added penalty (aborting
    /// faults also report the penalty here — use [`Self::sample_event`] for
    /// the full outcome).
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        match self.sample_event(rng) {
            FaultEvent::None => 0.0,
            FaultEvent::Degraded { penalty_secs } => penalty_secs,
            FaultEvent::Abort => self.retry_penalty_secs,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert_eq!(FaultPlan::NONE.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn certain_failure_always_fires() {
        let plan = FaultPlan { phase_fail_prob: 1.0, retry_penalty_secs: 30.0, abort_prob: 0.0 };
        let mut rng = SplitMix64::new(2);
        assert_eq!(plan.sample(&mut rng), 30.0);
    }

    #[test]
    fn certain_abort_always_aborts() {
        let plan = FaultPlan { phase_fail_prob: 1.0, retry_penalty_secs: 30.0, abort_prob: 1.0 };
        let mut rng = SplitMix64::new(2);
        assert_eq!(plan.sample_event(&mut rng), FaultEvent::Abort);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan { phase_fail_prob: 0.1, retry_penalty_secs: 1.0, abort_prob: 0.0 };
        let mut rng = SplitMix64::new(3);
        let fired = (0..10_000).filter(|_| plan.sample(&mut rng) > 0.0).count();
        assert!((800..1200).contains(&fired), "fired {fired}/10000");
    }

    #[test]
    fn paper_rate_statistics_hold_at_fixed_seeds() {
        // Satellite coverage: `sample` must hit `phase_fail_prob` within
        // tolerance at fixed seeds, and the abort split must match
        // `abort_prob` among fired faults.
        let plan = FaultPlan::papers_observed_rate();
        for seed in [11u64, 42, 20131117] {
            let mut rng = SplitMix64::new(seed);
            let n = 200_000u32;
            let mut fired = 0u32;
            let mut aborted = 0u32;
            for _ in 0..n {
                match plan.sample_event(&mut rng) {
                    FaultEvent::None => {}
                    FaultEvent::Degraded { penalty_secs } => {
                        assert_eq!(penalty_secs, plan.retry_penalty_secs);
                        fired += 1;
                    }
                    FaultEvent::Abort => {
                        fired += 1;
                        aborted += 1;
                    }
                }
            }
            let rate = f64::from(fired) / f64::from(n);
            // 0.004 ± 3.5 sigma (sigma ≈ sqrt(p(1-p)/n) ≈ 1.4e-4).
            assert!(
                (rate - plan.phase_fail_prob).abs() < 5e-4,
                "seed {seed}: fired rate {rate} vs {}",
                plan.phase_fail_prob
            );
            let abort_share = f64::from(aborted) / f64::from(fired);
            assert!(
                (abort_share - plan.abort_prob).abs() < 0.06,
                "seed {seed}: abort share {abort_share} vs {}",
                plan.abort_prob
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let plan = FaultPlan::papers_observed_rate();
        let run = |seed: u64| -> Vec<FaultEvent> {
            let mut rng = SplitMix64::new(seed);
            (0..5_000).map(|_| plan.sample_event(&mut rng)).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn parse_accepts_named_and_numeric_specs() {
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::NONE);
        assert_eq!(FaultPlan::parse("off").unwrap(), FaultPlan::NONE);
        assert_eq!(FaultPlan::parse("paper-rate").unwrap(), FaultPlan::papers_observed_rate());
        let p = FaultPlan::parse("0.01").unwrap();
        assert_eq!(p.phase_fail_prob, 0.01);
        assert_eq!(p.retry_penalty_secs, 35.0);
        assert_eq!(p.abort_prob, 0.0);
        let p = FaultPlan::parse("0.02, 10, 0.5").unwrap();
        assert_eq!(p, FaultPlan { phase_fail_prob: 0.02, retry_penalty_secs: 10.0, abort_prob: 0.5 });
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["banana", "1.5", "0.1,x", "0.1,5,2", "-0.1", "0.1,5,0.2,9", "nan"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
