//! Results of executing a workload on an I/O system.

/// Outcome of one simulated application run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// End-to-end execution time, seconds (what Fig. 5 plots).
    pub total_secs: f64,
    /// Seconds spent in I/O phases (visible I/O time).
    pub io_secs: f64,
    /// Seconds spent in compute phases (after placement interference).
    pub compute_secs: f64,
    /// Duration of every phase, in workload order.
    pub phase_secs: Vec<f64>,
    /// Injected server-connection failures encountered (and tolerated).
    pub faults: usize,
    /// Wall-clock absorbed by tolerated fault retries, seconds (part of
    /// `io_secs`).
    pub fault_secs: f64,
}

impl RunOutcome {
    /// Fraction of the run spent doing I/O.
    pub fn io_fraction(&self) -> f64 {
        if self.total_secs > 0.0 {
            self.io_secs / self.total_secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_fraction_is_well_defined() {
        let o = RunOutcome {
            total_secs: 100.0,
            io_secs: 25.0,
            compute_secs: 75.0,
            phase_secs: vec![],
            faults: 0,
            fault_secs: 0.0,
        };
        assert_eq!(o.io_fraction(), 0.25);
        let zero = RunOutcome {
            total_secs: 0.0,
            io_secs: 0.0,
            compute_secs: 0.0,
            phase_secs: vec![],
            faults: 0,
            fault_secs: 0.0,
        };
        assert_eq!(zero.io_fraction(), 0.0);
    }
}
