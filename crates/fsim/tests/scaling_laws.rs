//! Scaling-law tests of the file-system models: qualitative behaviours
//! that must hold across the whole parameter range, not just at the
//! calibrated points.

use acic_cloudsim::cluster::{ClusterSpec, Placement};
use acic_cloudsim::device::DeviceKind;
use acic_cloudsim::instance::InstanceType;
use acic_cloudsim::raid::Raid0;
use acic_cloudsim::units::mib;
use acic_fsim::{Executor, FsConfig, IoApi, IoOp, IoPhase, IoSystem, Phase, Workload};
use proptest::prelude::*;

fn system(
    fs: FsConfig,
    io_servers: usize,
    placement: Placement,
    device: DeviceKind,
    nprocs: usize,
) -> IoSystem {
    let width = match device {
        DeviceKind::Ephemeral | DeviceKind::Ssd => 4,
        DeviceKind::Ebs => 2,
    };
    IoSystem {
        cluster: ClusterSpec::for_procs(
            InstanceType::Cc2_8xlarge,
            nprocs,
            io_servers,
            placement,
            Raid0::new(device, width),
        ),
        fs,
    }
}

fn workload(nprocs: usize, per_proc_mib: f64, op: IoOp, collective: bool, iters: usize) -> Workload {
    let io = IoPhase {
        io_procs: nprocs,
        access: acic_fsim::Access::Sequential,
        per_proc_bytes: mib(per_proc_mib),
        request_size: mib(4.0),
        op,
        collective,
        shared_file: true,
        api: IoApi::MpiIo,
    };
    Workload::new(nprocs, vec![Phase::Io(io); iters])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PVFS2: more servers never hurt large synchronized writes, across
    /// data sizes, scales, and devices.
    #[test]
    fn pvfs_servers_never_hurt_big_writes(
        per_proc in 32.0f64..256.0,
        nprocs in prop::sample::select(vec![64usize, 128, 256]),
        device in prop::sample::select(vec![DeviceKind::Ephemeral, DeviceKind::Ebs]),
    ) {
        let w = workload(nprocs, per_proc, IoOp::Write, true, 2);
        let t1 = Executor::new(system(FsConfig::pvfs2(mib(4.0)), 1, Placement::Dedicated, device, nprocs))
            .run(&w, 9).unwrap().total_secs;
        let t4 = Executor::new(system(FsConfig::pvfs2(mib(4.0)), 4, Placement::Dedicated, device, nprocs))
            .run(&w, 9).unwrap().total_secs;
        prop_assert!(t4 <= t1 * 1.05, "4 servers {t4}s vs 1 server {t1}s");
    }

    /// Reads scale with data volume on every file system: double volume,
    /// at least no speedup.
    #[test]
    fn read_time_monotone_in_volume(
        base in 16.0f64..128.0,
        servers in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let sys = system(FsConfig::pvfs2(mib(4.0)), servers, Placement::Dedicated, DeviceKind::Ephemeral, 64);
        let small = workload(64, base, IoOp::Read, false, 1);
        let large = workload(64, base * 2.0, IoOp::Read, false, 1);
        let ts = Executor::new(sys).run(&small, 3).unwrap().total_secs;
        let tl = Executor::new(sys).run(&large, 3).unwrap().total_secs;
        prop_assert!(tl >= ts * 0.99, "{tl} vs {ts}");
    }

    /// Part-time placement never changes the billed-instance arithmetic:
    /// dedicated always bills more instances for the same cluster shape.
    #[test]
    fn dedicated_always_bills_more_instances(
        nprocs in prop::sample::select(vec![64usize, 128, 256]),
        servers in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let d = system(FsConfig::pvfs2(mib(4.0)), servers, Placement::Dedicated, DeviceKind::Ephemeral, nprocs);
        let p = system(FsConfig::pvfs2(mib(4.0)), servers, Placement::PartTime, DeviceKind::Ephemeral, nprocs);
        prop_assert_eq!(
            d.cluster.total_instances(),
            p.cluster.total_instances() + servers
        );
    }

    /// NFS write-cache absorption never makes a *larger* write faster.
    #[test]
    fn nfs_write_time_monotone_in_volume(per_proc in 8.0f64..256.0) {
        let sys = system(FsConfig::nfs(), 1, Placement::Dedicated, DeviceKind::Ebs, 64);
        let small = workload(64, per_proc, IoOp::Write, false, 1);
        let large = workload(64, per_proc * 2.0, IoOp::Write, false, 1);
        let ts = Executor::new(sys).run(&small, 4).unwrap().total_secs;
        let tl = Executor::new(sys).run(&large, 4).unwrap().total_secs;
        prop_assert!(tl >= ts * 0.99, "{tl} vs {ts}");
    }

    /// Random access is never faster than sequential access for the same
    /// workload, on any file system or device.
    #[test]
    fn random_access_never_beats_sequential(
        per_proc in 16.0f64..128.0,
        device in prop::sample::select(vec![DeviceKind::Ephemeral, DeviceKind::Ebs, DeviceKind::Ssd]),
        read in prop::bool::ANY,
        servers in prop::sample::select(vec![1usize, 4]),
    ) {
        let op = if read { IoOp::Read } else { IoOp::Write };
        let mk = |access| {
            let io = acic_fsim::IoPhase {
                io_procs: 64,
                access,
                per_proc_bytes: mib(per_proc),
                request_size: mib(1.0),
                op,
                collective: false,
                shared_file: false,
                api: IoApi::Posix,
            };
            Workload::new(64, vec![Phase::Io(io)])
        };
        let sys = system(FsConfig::pvfs2(mib(4.0)), servers, Placement::Dedicated, device, 64);
        let t_seq = Executor::new(sys).run(&mk(acic_fsim::Access::Sequential), 6).unwrap().total_secs;
        let t_rand = Executor::new(sys).run(&mk(acic_fsim::Access::Random), 6).unwrap().total_secs;
        prop_assert!(t_rand >= t_seq * 0.999, "random {t_rand} vs sequential {t_seq}");
    }

    /// The seek penalty is worst on spinning media and mild on SSDs.
    #[test]
    fn random_penalty_ordered_by_medium(per_proc in 64.0f64..256.0) {
        let ratio = |device| {
            let mk = |access| {
                let io = acic_fsim::IoPhase {
                    io_procs: 64,
                    access,
                    per_proc_bytes: mib(per_proc),
                    request_size: mib(1.0),
                    op: IoOp::Read,
                    collective: false,
                    shared_file: false,
                    api: IoApi::Posix,
                };
                Workload::new(64, vec![Phase::Io(io)])
            };
            let sys = system(FsConfig::pvfs2(mib(4.0)), 1, Placement::Dedicated, device, 64);
            let seq = Executor::new(sys).run(&mk(acic_fsim::Access::Sequential), 2).unwrap().total_secs;
            let rand = Executor::new(sys).run(&mk(acic_fsim::Access::Random), 2).unwrap().total_secs;
            rand / seq
        };
        let hdd = ratio(DeviceKind::Ephemeral);
        let ssd = ratio(DeviceKind::Ssd);
        prop_assert!(hdd > ssd, "HDD penalty {hdd:.2} should exceed SSD penalty {ssd:.2}");
    }

    /// Stripe size only matters for PVFS2 — NFS results are identical
    /// whatever stripe value rides along in the config.
    #[test]
    fn nfs_ignores_stripe_size(per_proc in 8.0f64..64.0, seed in 0u64..50) {
        let w = workload(64, per_proc, IoOp::Write, false, 2);
        let a = Executor::new(system(FsConfig::nfs(), 1, Placement::Dedicated, DeviceKind::Ephemeral, 64))
            .run(&w, seed).unwrap();
        let mut cfg = FsConfig::nfs();
        cfg.stripe_size = mib(4.0); // bogus value must be ignored
        let b = Executor::new(system(cfg, 1, Placement::Dedicated, DeviceKind::Ephemeral, 64))
            .run(&w, seed).unwrap();
        prop_assert_eq!(a.total_secs, b.total_secs);
    }
}
