//! Mapping design levels (±1) onto concrete parameter values.
//!
//! "This parameter will use a 'high' value if A(i,j) is '+1', and a 'low'
//! one if otherwise.  The 'high' and 'low' values are selected to be at the
//! two ends of the parameter value range" (paper §4.1).

use crate::matrix::PbMatrix;

/// A two-level setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// The low end of the parameter's value range (−1).
    Low,
    /// The high end of the parameter's value range (+1).
    High,
}

impl Level {
    /// Convert a ±1 matrix entry.
    pub fn from_sign(sign: i8) -> Self {
        if sign > 0 {
            Level::High
        } else {
            Level::Low
        }
    }

    /// Pick from a `(low, high)` pair.
    pub fn pick<T: Copy>(self, low: T, high: T) -> T {
        match self {
            Level::Low => low,
            Level::High => high,
        }
    }
}

/// Assignment of `(low, high)` values to every parameter of a design.
#[derive(Debug, Clone)]
pub struct Assignment<T: Copy> {
    /// `(low, high)` per parameter, in column order.
    pub levels: Vec<(T, T)>,
}

impl<T: Copy> Assignment<T> {
    /// New assignment; one `(low, high)` pair per screened parameter.
    pub fn new(levels: Vec<(T, T)>) -> Self {
        Self { levels }
    }

    /// Concrete parameter values for design row `run`.
    pub fn values_for_run(&self, matrix: &PbMatrix, run: usize) -> Vec<T> {
        assert_eq!(
            self.levels.len(),
            matrix.n_params,
            "assignment must cover every design column"
        );
        matrix.entries[run]
            .iter()
            .zip(&self.levels)
            .map(|(&sign, &(lo, hi))| Level::from_sign(sign).pick(lo, hi))
            .collect()
    }

    /// The levels (not values) of design row `run`.
    pub fn levels_for_run(matrix: &PbMatrix, run: usize) -> Vec<Level> {
        matrix.entries[run].iter().map(|&s| Level::from_sign(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_conversion() {
        assert_eq!(Level::from_sign(1), Level::High);
        assert_eq!(Level::from_sign(-1), Level::Low);
        assert_eq!(Level::High.pick(3, 9), 9);
        assert_eq!(Level::Low.pick(3, 9), 3);
    }

    #[test]
    fn values_follow_matrix_signs() {
        let m = PbMatrix::new(5);
        let a = Assignment::new(vec![(0, 1); 5]);
        for run in 0..m.n_runs() {
            let vals = a.values_for_run(&m, run);
            for (j, v) in vals.iter().enumerate() {
                assert_eq!(*v, if m.entries[run][j] > 0 { 1 } else { 0 });
            }
        }
    }

    #[test]
    fn levels_for_run_matches_signs() {
        let m = PbMatrix::new(3);
        let lv = Assignment::<i32>::levels_for_run(&m, m.n_runs() - 1);
        assert_eq!(lv, vec![Level::Low; 3], "final PB row is all-low");
    }

    #[test]
    #[should_panic(expected = "cover every design column")]
    fn wrong_arity_panics() {
        let m = PbMatrix::new(5);
        let a = Assignment::new(vec![(0, 1); 3]);
        let _ = a.values_for_run(&m, 0);
    }

    #[test]
    fn works_with_float_ranges() {
        let m = PbMatrix::new(3);
        let a = Assignment::new(vec![(1.0, 512.0), (0.25, 128.0), (1.0, 100.0)]);
        let vals = a.values_for_run(&m, m.n_runs() - 1);
        assert_eq!(vals, vec![1.0, 0.25, 1.0]);
    }
}
