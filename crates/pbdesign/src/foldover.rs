//! Foldover PB designs.
//!
//! "We adopted in ACIC the improved variation called foldover PB design
//! [Montgomery].  Foldover PB design further examines the effects of
//! interactions between parameters, at the cost of doubling the number of
//! runs" (paper §4.1).  The foldover appends the sign-flipped matrix; main
//! effects estimated from the folded design are free of confounding with
//! two-factor interactions.

use crate::matrix::PbMatrix;

/// Produce the foldover of a PB design: the original rows followed by the
/// same rows with every sign flipped (2·N′ runs total).
pub fn foldover(m: &PbMatrix) -> PbMatrix {
    let mut entries = m.entries.clone();
    entries.extend(m.entries.iter().map(|row| row.iter().map(|&e| -e).collect()));
    PbMatrix { n_params: m.n_params, entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::rank_by_effect;

    #[test]
    fn foldover_doubles_runs() {
        let m = PbMatrix::new(15);
        let f = foldover(&m);
        assert_eq!(f.n_runs(), 32, "the paper: N=15, N'=16, 32 runs total");
        assert_eq!(f.n_params, 15);
    }

    #[test]
    fn second_half_mirrors_first() {
        let m = PbMatrix::new(7);
        let f = foldover(&m);
        let n = m.n_runs();
        for i in 0..n {
            for j in 0..7 {
                assert_eq!(f.entries[i][j], -f.entries[i + n][j]);
            }
        }
    }

    #[test]
    fn foldover_stays_orthogonal_and_balanced() {
        let m = PbMatrix::new(11);
        let f = foldover(&m);
        assert_eq!(f.max_column_correlation(), 0);
        for j in 0..11 {
            let sum: i32 = f.column(j).iter().map(|&e| i32::from(e)).sum();
            assert_eq!(sum, 0);
        }
    }

    #[test]
    fn foldover_cancels_two_factor_interactions() {
        // Response = pure interaction x0*x1.  In the folded design each row
        // and its mirror contribute the same interaction value but opposite
        // main-effect signs, so every main effect must cancel to zero —
        // the de-confounding property foldover buys.
        let m = PbMatrix::new(7);
        let f = foldover(&m);
        let responses: Vec<f64> = f
            .entries
            .iter()
            .map(|row| f64::from(row[0]) * f64::from(row[1]) * 50.0)
            .collect();
        let effects = rank_by_effect(&f, &responses);
        for e in &effects {
            assert_eq!(e.effect, 0.0, "param {} effect contaminated by interaction", e.param);
        }
    }

    #[test]
    fn plain_design_confounds_interactions_foldover_does_not() {
        // Same interaction response on the *unfolded* design: at least one
        // main effect is nonzero (confounding), demonstrating what the
        // foldover is for.
        let m = PbMatrix::new(7);
        let responses: Vec<f64> = m
            .entries
            .iter()
            .map(|row| f64::from(row[0]) * f64::from(row[1]) * 50.0)
            .collect();
        let effects = rank_by_effect(&m, &responses);
        assert!(
            effects.iter().any(|e| e.effect != 0.0),
            "plain PB should confound pure interactions into main effects"
        );
    }
}
