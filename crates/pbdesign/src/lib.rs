//! # acic-pbdesign — Plackett–Burman experiment designs
//!
//! ACIC's dimension reducer (paper §4.1) uses Plackett–Burman (PB) designs
//! [Plackett & Burman, *Biometrika* 1946] to rank the 15 parameters of its
//! exploration space with only ~N measurement runs instead of a factorial
//! sweep.  This crate implements:
//!
//! * construction of the standard two-level PB matrices for N′ ∈ {8, 12,
//!   16, 20, 24} runs via the published cyclic generator rows
//!   ([`matrix`]);
//! * the *foldover* variant, which appends the sign-flipped matrix and
//!   doubles the run count to 2·N′, separating main effects from two-factor
//!   interactions — the variant ACIC adopts following Yi et al. [53]
//!   ([`foldover`]);
//! * effect computation (dot product of a parameter's ±1 column with the
//!   response column) and importance ranking ([`effect`]);
//! * mapping of ±1 levels onto concrete parameter values ([`assign`]); and
//! * an end-to-end screening harness that runs a measurement closure over
//!   every design row and returns the ranking ([`screening`]).
//!
//! The worked example of the paper's Table 2 (N = 5, N′ = 8) is reproduced
//! verbatim in this crate's tests and by the `table2_pb_example` binary of
//! `acic-bench`.

pub mod assign;
pub mod effect;
pub mod foldover;
pub mod matrix;
pub mod screening;

pub use assign::{Assignment, Level};
pub use effect::{rank_by_effect, Effect};
pub use foldover::foldover;
pub use matrix::PbMatrix;
pub use screening::{screen, Screening};
