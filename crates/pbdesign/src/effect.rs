//! Effect computation and importance ranking.
//!
//! "After the runs are completed, the importance ('effect') of the jth
//! parameter is calculated as the dot product of the jth column in A ...
//! and the result column ... The sign of the result is meaningless when
//! ranking the parameters" (paper §4.1).

use crate::matrix::PbMatrix;

/// The screened effect of one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Effect {
    /// Parameter (column) index.
    pub param: usize,
    /// Signed dot product of the ±1 column with the response column.
    pub effect: f64,
    /// Importance rank: 1 = largest `|effect|`.
    pub rank: usize,
}

/// Compute all effects and assign ranks (1 = most important).  Ties break
/// by parameter index so the ranking is deterministic.
pub fn rank_by_effect(matrix: &PbMatrix, responses: &[f64]) -> Vec<Effect> {
    assert_eq!(
        responses.len(),
        matrix.n_runs(),
        "one response per design row required"
    );
    let mut effects: Vec<Effect> = (0..matrix.n_params)
        .map(|j| {
            let effect = matrix
                .entries
                .iter()
                .zip(responses)
                .map(|(row, &y)| f64::from(row[j]) * y)
                .sum();
            Effect { param: j, effect, rank: 0 }
        })
        .collect();

    let mut order: Vec<usize> = (0..effects.len()).collect();
    order.sort_by(|&a, &b| {
        effects[b]
            .effect
            .abs()
            .total_cmp(&effects[a].effect.abs())
            .then(a.cmp(&b))
    });
    for (rank0, &idx) in order.iter().enumerate() {
        effects[idx].rank = rank0 + 1;
    }
    effects
}

/// Parameter indices ordered most- to least-important.
pub fn importance_order(effects: &[Effect]) -> Vec<usize> {
    let mut by_rank = effects.to_vec();
    by_rank.sort_by_key(|e| e.rank);
    by_rank.into_iter().map(|e| e.param).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 2 example verbatim: N = 5 parameters, N′ = 8 runs.
    fn table2() -> (PbMatrix, Vec<f64>) {
        let rows: Vec<Vec<i8>> = vec![
            vec![1, 1, 1, -1, 1],
            vec![-1, 1, 1, 1, -1],
            vec![-1, -1, 1, 1, 1],
            vec![1, -1, -1, 1, 1],
            vec![-1, 1, -1, -1, 1],
            vec![1, -1, 1, -1, -1],
            vec![1, 1, -1, 1, -1],
            vec![-1, -1, -1, -1, -1],
        ];
        let m = PbMatrix { n_params: 5, entries: rows };
        let perf = vec![19.0, 21.0, 2.0, 11.0, 72.0, 100.0, 8.0, 3.0];
        (m, perf)
    }

    #[test]
    fn reproduces_paper_table2_effects() {
        let (m, perf) = table2();
        let effects = rank_by_effect(&m, &perf);
        let abs: Vec<f64> = effects.iter().map(|e| e.effect.abs()).collect();
        assert_eq!(abs, vec![40.0, 4.0, 48.0, 152.0, 28.0]);
    }

    #[test]
    fn reproduces_paper_table2_ranks() {
        let (m, perf) = table2();
        let effects = rank_by_effect(&m, &perf);
        let ranks: Vec<usize> = effects.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![3, 5, 2, 1, 4], "Table 2's rank row: A=3 B=5 C=2 D=1 E=4");
    }

    #[test]
    fn importance_order_follows_ranks() {
        let (m, perf) = table2();
        let effects = rank_by_effect(&m, &perf);
        assert_eq!(importance_order(&effects), vec![3, 2, 0, 4, 1]);
    }

    #[test]
    fn constant_response_gives_zero_effects() {
        let m = PbMatrix::new(7);
        let effects = rank_by_effect(&m, &vec![5.0; m.n_runs()]);
        for e in &effects {
            // Balanced columns: a constant response cancels exactly.
            assert_eq!(e.effect, 0.0);
        }
        // Ties break by index → ranks are 1..=7 in column order.
        let ranks: Vec<usize> = effects.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn planted_single_factor_is_ranked_first() {
        // Response depends only on parameter 4: the screen must find it.
        let m = PbMatrix::new(11);
        let responses: Vec<f64> = m
            .entries
            .iter()
            .map(|row| if row[4] > 0 { 100.0 } else { 10.0 })
            .collect();
        let effects = rank_by_effect(&m, &responses);
        assert_eq!(effects[4].rank, 1);
    }

    #[test]
    fn planted_factor_ordering_is_recovered() {
        // Linear model with decreasing coefficients: ranks must follow.
        let m = PbMatrix::new(7);
        let coef = [64.0, 32.0, 16.0, 8.0, 4.0, 2.0, 1.0];
        let responses: Vec<f64> = m
            .entries
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&coef)
                    .map(|(&e, &c)| f64::from(e) * c)
                    .sum::<f64>()
            })
            .collect();
        let effects = rank_by_effect(&m, &responses);
        let ranks: Vec<usize> = effects.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "one response per design row")]
    fn response_length_must_match() {
        let m = PbMatrix::new(5);
        let _ = rank_by_effect(&m, &[1.0, 2.0]);
    }
}
