//! End-to-end screening: run a measurement over every design row, compute
//! effects, and return the importance ranking.

use crate::effect::{importance_order, rank_by_effect, Effect};
use crate::foldover::foldover;
use crate::matrix::PbMatrix;

/// Result of a PB screening campaign.
#[derive(Debug, Clone)]
pub struct Screening {
    /// The design that was executed (post-foldover if requested).
    pub design: PbMatrix,
    /// Response measured for each design row.
    pub responses: Vec<f64>,
    /// Effect and rank per parameter.
    pub effects: Vec<Effect>,
}

impl Screening {
    /// Parameter indices ordered most- to least-important.
    pub fn importance_order(&self) -> Vec<usize> {
        importance_order(&self.effects)
    }

    /// The rank (1 = most important) of parameter `j`.
    pub fn rank_of(&self, j: usize) -> usize {
        self.effects[j].rank
    }
}

/// Screen `n_params` parameters by evaluating `measure` once per design
/// row.  `measure` receives the ±1 signs of the row (callers map them to
/// concrete values with [`crate::assign::Assignment`]).  With
/// `use_foldover` the run count doubles, matching ACIC's choice
/// (N = 15 → 32 runs).
pub fn screen<F>(n_params: usize, use_foldover: bool, mut measure: F) -> Screening
where
    F: FnMut(&[i8]) -> f64,
{
    let base = PbMatrix::new(n_params);
    let design = if use_foldover { foldover(&base) } else { base };
    let responses: Vec<f64> = design.entries.iter().map(|row| measure(row)).collect();
    let effects = rank_by_effect(&design, &responses);
    Screening { design, responses, effects }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_runs_expected_number_of_measurements() {
        let mut calls = 0;
        let s = screen(15, true, |_| {
            calls += 1;
            1.0
        });
        assert_eq!(calls, 32);
        assert_eq!(s.responses.len(), 32);
        assert_eq!(s.effects.len(), 15);
    }

    #[test]
    fn screening_without_foldover_halves_runs() {
        let mut calls = 0;
        screen(15, false, |_| {
            calls += 1;
            1.0
        });
        assert_eq!(calls, 16);
    }

    #[test]
    fn screening_identifies_dominant_parameters() {
        // Response dominated by params 2 and 5; interaction noise on 0×1.
        let s = screen(9, true, |row| {
            200.0 * f64::from(row[2]) + 80.0 * f64::from(row[5])
                + 15.0 * f64::from(row[0]) * f64::from(row[1])
                + 5.0 * f64::from(row[7])
        });
        assert_eq!(s.rank_of(2), 1);
        assert_eq!(s.rank_of(5), 2);
        assert_eq!(s.importance_order()[0], 2);
        assert_eq!(s.importance_order()[1], 5);
    }

    #[test]
    fn foldover_protects_ranking_from_interactions() {
        // A strong 0×1 interaction with a weak main effect on 3: under
        // foldover the interaction cancels and 3 must rank first.
        let s = screen(7, true, |row| {
            500.0 * f64::from(row[0]) * f64::from(row[1]) + 10.0 * f64::from(row[3])
        });
        assert_eq!(s.rank_of(3), 1);
    }
}
