//! Construction of two-level Plackett–Burman matrices.
//!
//! For run counts N′ ∈ {8, 12, 16, 20, 24} the design is generated from the
//! first rows published by Plackett & Burman (1946): row *i* of the first
//! N′−1 rows is the generator cyclically shifted by *i*, and the final row
//! is all −1.  Columns beyond the number of screened parameters are simply
//! dropped (they estimate nothing).

/// A (possibly folded-over) PB design matrix with entries ±1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbMatrix {
    /// Number of screened parameters (columns).
    pub n_params: usize,
    /// Row-major entries, each +1 or −1; `rows × n_params`.
    pub entries: Vec<Vec<i8>>,
}

/// Published cyclic generator rows ('+' = +1, '-' = −1).
fn generator(n_runs: usize) -> Option<&'static str> {
    match n_runs {
        8 => Some("+++-+--"),
        12 => Some("++-+++---+-"),
        16 => Some("++++-+-++--+---"),
        20 => Some("++--++++-+-+----++-"),
        24 => Some("+++++-+-++--++--+-+----"),
        _ => None,
    }
}

impl PbMatrix {
    /// The smallest PB run count (multiple of 4, ≥ 8, > `n_params`) that can
    /// screen `n_params` parameters.
    pub fn runs_for(n_params: usize) -> usize {
        let mut n = ((n_params + 1).div_ceil(4) * 4).max(8);
        while generator(n).is_none() {
            n += 4;
            assert!(n <= 24, "PB designs beyond 24 runs are not tabulated here");
        }
        n
    }

    /// Build the standard PB design for `n_params` parameters
    /// (1 ≤ `n_params` ≤ 23).
    pub fn new(n_params: usize) -> Self {
        assert!(n_params >= 1, "need at least one parameter");
        let n_runs = Self::runs_for(n_params);
        let gen: Vec<i8> = generator(n_runs)
            .expect("runs_for returned an untabulated size")
            .bytes()
            .map(|b| if b == b'+' { 1 } else { -1 })
            .collect();
        debug_assert_eq!(gen.len(), n_runs - 1);

        let mut entries = Vec::with_capacity(n_runs);
        for i in 0..n_runs - 1 {
            // Row i = generator rotated right by i, truncated to n_params.
            let row: Vec<i8> = (0..n_params)
                .map(|j| gen[(j + gen.len() - i % gen.len()) % gen.len()])
                .collect();
            entries.push(row);
        }
        entries.push(vec![-1; n_params]); // final all-low run
        Self { n_params, entries }
    }

    /// Number of measurement runs (rows).
    pub fn n_runs(&self) -> usize {
        self.entries.len()
    }

    /// The ±1 column of parameter `j`.
    pub fn column(&self, j: usize) -> Vec<i8> {
        self.entries.iter().map(|r| r[j]).collect()
    }

    /// Verify the defining property of a (full-width) PB design: every pair
    /// of distinct columns is orthogonal (dot product 0).  Returns the
    /// worst absolute pairwise dot product (0 for a proper design).
    pub fn max_column_correlation(&self) -> i32 {
        let mut worst = 0i32;
        for a in 0..self.n_params {
            for b in (a + 1)..self.n_params {
                let dot: i32 = self
                    .entries
                    .iter()
                    .map(|r| i32::from(r[a]) * i32::from(r[b]))
                    .sum();
                worst = worst.max(dot.abs());
            }
        }
        worst
    }
}

impl std::fmt::Display for PbMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, row) in self.entries.iter().enumerate() {
            write!(f, "run {:>2}: ", i + 1)?;
            for &e in row {
                write!(f, "{} ", if e > 0 { "+1" } else { "-1" })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_for_picks_smallest_tabulated_multiple_of_four() {
        assert_eq!(PbMatrix::runs_for(5), 8);
        assert_eq!(PbMatrix::runs_for(7), 8);
        assert_eq!(PbMatrix::runs_for(8), 12);
        assert_eq!(PbMatrix::runs_for(11), 12);
        assert_eq!(PbMatrix::runs_for(15), 16, "the paper's 15-D space needs N'=16");
        assert_eq!(PbMatrix::runs_for(19), 20);
        assert_eq!(PbMatrix::runs_for(23), 24);
    }

    #[test]
    fn paper_space_needs_16_runs() {
        let m = PbMatrix::new(15);
        assert_eq!(m.n_runs(), 16);
        assert_eq!(m.n_params, 15);
    }

    #[test]
    fn all_tabulated_designs_are_orthogonal() {
        for n_params in [7usize, 11, 15, 19, 23] {
            let m = PbMatrix::new(n_params);
            assert_eq!(
                m.max_column_correlation(),
                0,
                "PB({}, {}) must have orthogonal columns",
                n_params,
                m.n_runs()
            );
        }
    }

    #[test]
    fn truncated_designs_stay_orthogonal() {
        // Dropping columns preserves pairwise orthogonality.
        for n_params in [3usize, 5, 9, 13] {
            let m = PbMatrix::new(n_params);
            assert_eq!(m.max_column_correlation(), 0, "PB with {n_params} params");
        }
    }

    #[test]
    fn columns_are_balanced() {
        // Each column has equal numbers of +1 and −1.
        let m = PbMatrix::new(15);
        for j in 0..15 {
            let sum: i32 = m.column(j).iter().map(|&e| i32::from(e)).sum();
            assert_eq!(sum, 0, "column {j} must be balanced");
        }
    }

    #[test]
    fn last_row_is_all_low() {
        let m = PbMatrix::new(7);
        assert!(m.entries.last().unwrap().iter().all(|&e| e == -1));
    }

    #[test]
    fn display_renders_rows() {
        let m = PbMatrix::new(3);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 8);
        assert!(s.contains("run  1"));
    }

    #[test]
    #[should_panic(expected = "not tabulated")]
    fn too_many_params_panics() {
        let _ = PbMatrix::runs_for(24);
    }
}
