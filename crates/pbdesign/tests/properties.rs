//! Property-based tests of the Plackett–Burman machinery.

use acic_pbdesign::effect::rank_by_effect;
use acic_pbdesign::foldover::foldover;
use acic_pbdesign::matrix::PbMatrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every truncation of every tabulated design keeps columns balanced
    /// and mutually orthogonal.
    #[test]
    fn truncated_designs_stay_balanced_and_orthogonal(n_params in 2usize..=23) {
        let m = PbMatrix::new(n_params);
        prop_assert_eq!(m.max_column_correlation(), 0);
        for j in 0..n_params {
            let sum: i32 = m.column(j).iter().map(|&e| i32::from(e)).sum();
            prop_assert_eq!(sum, 0, "column {} unbalanced", j);
        }
    }

    /// A pure main-effects linear model is recovered exactly: the signed
    /// effect of parameter j equals n_runs × its coefficient.
    #[test]
    fn linear_models_are_recovered_exactly(
        n_params in 2usize..=15,
        coefs in prop::collection::vec(-100.0f64..100.0, 15),
    ) {
        let m = PbMatrix::new(n_params);
        let responses: Vec<f64> = m
            .entries
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&coefs)
                    .map(|(&e, &c)| f64::from(e) * c)
                    .sum::<f64>()
            })
            .collect();
        let effects = rank_by_effect(&m, &responses);
        for e in &effects {
            let expected = coefs[e.param] * m.n_runs() as f64;
            prop_assert!((e.effect - expected).abs() < 1e-6 * expected.abs().max(1.0),
                "param {}: effect {} vs expected {}", e.param, e.effect, expected);
        }
    }

    /// Foldover always cancels every pure two-factor interaction.
    #[test]
    fn foldover_cancels_any_two_factor_interaction(
        n_params in 3usize..=15,
        a in 0usize..15,
        b in 0usize..15,
        weight in 1.0f64..100.0,
    ) {
        let a = a % n_params;
        let b = b % n_params;
        prop_assume!(a != b);
        let f = foldover(&PbMatrix::new(n_params));
        let responses: Vec<f64> = f
            .entries
            .iter()
            .map(|row| f64::from(row[a]) * f64::from(row[b]) * weight)
            .collect();
        let effects = rank_by_effect(&f, &responses);
        for e in &effects {
            prop_assert!(e.effect.abs() < 1e-9,
                "param {} contaminated: {}", e.param, e.effect);
        }
    }

    /// Ranks are always a permutation of 1..=n, whatever the responses.
    #[test]
    fn ranks_are_always_a_permutation(
        n_params in 1usize..=15,
        responses in prop::collection::vec(-1e6f64..1e6, 32),
    ) {
        let m = PbMatrix::new(n_params);
        let r: Vec<f64> = responses.into_iter().take(m.n_runs()).collect();
        prop_assume!(r.len() == m.n_runs());
        let effects = rank_by_effect(&m, &r);
        let mut ranks: Vec<usize> = effects.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (1..=n_params).collect::<Vec<_>>());
    }

    /// Scaling all responses by a positive constant never changes ranks.
    #[test]
    fn ranking_is_scale_invariant(
        n_params in 2usize..=11,
        responses in prop::collection::vec(-1e3f64..1e3, 24),
        scale in 0.001f64..1000.0,
    ) {
        let m = PbMatrix::new(n_params);
        let r: Vec<f64> = responses.into_iter().take(m.n_runs()).collect();
        prop_assume!(r.len() == m.n_runs());
        let scaled: Vec<f64> = r.iter().map(|x| x * scale).collect();
        let e1 = rank_by_effect(&m, &r);
        let e2 = rank_by_effect(&m, &scaled);
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert_eq!(a.rank, b.rank);
        }
    }
}
