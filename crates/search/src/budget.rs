//! Budgets and stop rules for adaptive campaigns, with typed errors.
//!
//! A [`Budget`] bounds what a search campaign may spend: a hard cap on
//! simulated measurements, an optional cap on simulated collection cost,
//! and an optional plateau rule that stops a campaign whose best observed
//! improvement has stopped moving.  [`StopReason`] records which rule
//! fired — it is part of the rendered plan, so two same-seed campaigns
//! must stop for bit-identical reasons.

use acic::AcicError;

/// Why a search campaign stopped proposing batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The measurement budget is exhausted.
    Budget,
    /// The simulated-cost ceiling was reached.
    Cost,
    /// The best observed improvement has not moved for
    /// [`Budget::plateau_rounds`] consecutive rounds.
    Plateau,
    /// Every grid point has been proposed (the search degenerated into the
    /// exhaustive campaign it was meant to avoid — possible only when the
    /// budget exceeds the grid).
    Exhausted,
}

impl StopReason {
    /// Stable one-word code used in the rendered plan.
    pub fn code(&self) -> &'static str {
        match self {
            StopReason::Budget => "budget",
            StopReason::Cost => "cost",
            StopReason::Plateau => "plateau",
            StopReason::Exhausted => "exhausted",
        }
    }
}

/// Errors of the search layer itself (campaign-level failures from the
/// trainer pass through as [`SearchError::Collect`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The budget is not satisfiable (zero measurements, zero batch,
    /// non-positive cost ceiling, ...).
    InvalidBudget(String),
    /// The campaign grid is empty — there is nothing to plan over.
    EmptyGrid,
    /// A planner proposed an index outside the grid (planner bug; surfaced
    /// as a typed error instead of a panic so the CLI can report it).
    BadProposal { round: usize, index: usize, grid: usize },
    /// The underlying collection failed.
    Collect(AcicError),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::InvalidBudget(why) => write!(f, "invalid search budget: {why}"),
            SearchError::EmptyGrid => write!(f, "search grid is empty"),
            SearchError::BadProposal { round, index, grid } => write!(
                f,
                "planner proposed index {index} outside the {grid}-point grid in round {round}"
            ),
            SearchError::Collect(e) => write!(f, "collection failed during search: {e}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<AcicError> for SearchError {
    fn from(e: AcicError) -> Self {
        SearchError::Collect(e)
    }
}

/// What an adaptive campaign may spend before it must stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Hard cap on *simulated* measurements (store hits are free: answered
    /// points do not consume budget).
    pub max_measurements: usize,
    /// Measurements proposed per round (the planner refits between
    /// rounds, so smaller batches adapt faster but refit more).
    pub batch: usize,
    /// Optional ceiling on cumulative simulated collection cost, USD.
    pub max_cost_usd: Option<f64>,
    /// Stop after this many consecutive rounds without the best observed
    /// improvement moving by more than [`Budget::PLATEAU_EPSILON`]
    /// (relative).  `None` disables plateau detection.
    pub plateau_rounds: Option<usize>,
}

impl Budget {
    /// Relative improvement below which a round counts as flat.
    pub const PLATEAU_EPSILON: f64 = 1e-9;

    /// A budget of `max_measurements` with the default batch of 8, no cost
    /// ceiling, and no plateau rule.
    pub fn measurements(max_measurements: usize) -> Self {
        Self { max_measurements, batch: 8, max_cost_usd: None, plateau_rounds: None }
    }

    /// Builder: measurements proposed per round.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: simulated-cost ceiling.
    pub fn with_max_cost(mut self, usd: f64) -> Self {
        self.max_cost_usd = Some(usd);
        self
    }

    /// Builder: plateau rule.
    pub fn with_plateau(mut self, rounds: usize) -> Self {
        self.plateau_rounds = Some(rounds);
        self
    }

    /// Reject unsatisfiable budgets with a typed error.
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.max_measurements == 0 {
            return Err(SearchError::InvalidBudget("max_measurements must be >= 1".into()));
        }
        if self.batch == 0 {
            return Err(SearchError::InvalidBudget("batch must be >= 1".into()));
        }
        if let Some(c) = self.max_cost_usd {
            if !(c > 0.0) {
                return Err(SearchError::InvalidBudget(format!(
                    "max_cost_usd must be positive (got {c})"
                )));
            }
        }
        if self.plateau_rounds == Some(0) {
            return Err(SearchError::InvalidBudget("plateau_rounds must be >= 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_degenerate_budgets() {
        assert!(Budget::measurements(10).validate().is_ok());
        let zero = Budget::measurements(0);
        assert!(matches!(zero.validate(), Err(SearchError::InvalidBudget(_))));
        let batchless = Budget::measurements(10).with_batch(0);
        assert!(matches!(batchless.validate(), Err(SearchError::InvalidBudget(_))));
        let free = Budget::measurements(10).with_max_cost(0.0);
        assert!(matches!(free.validate(), Err(SearchError::InvalidBudget(_))));
        let nan = Budget::measurements(10).with_max_cost(f64::NAN);
        assert!(matches!(nan.validate(), Err(SearchError::InvalidBudget(_))));
        let flat = Budget::measurements(10).with_plateau(0);
        assert!(matches!(flat.validate(), Err(SearchError::InvalidBudget(_))));
    }

    #[test]
    fn stop_reasons_have_stable_codes() {
        assert_eq!(StopReason::Budget.code(), "budget");
        assert_eq!(StopReason::Plateau.code(), "plateau");
        assert_eq!(StopReason::Cost.code(), "cost");
        assert_eq!(StopReason::Exhausted.code(), "exhausted");
    }

    #[test]
    fn errors_display_their_context() {
        let e = SearchError::BadProposal { round: 3, index: 99, grid: 50 };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("50") && s.contains("round 3"), "{s}");
        assert!(SearchError::EmptyGrid.to_string().contains("empty"));
    }
}
