//! Cross-application warm start: seed the surrogate from another
//! application's (or an earlier campaign's) durable store.
//!
//! A warm store was measured over a *different* grid — other application
//! characteristics, possibly other sweep dimensions — so its samples
//! rarely coincide with the new campaign's points.  Remapping bridges the
//! gap in feature space: every canonical warm sample is normalized by the
//! new grid's per-feature ranges, snapped to the nearest grid row
//! (Euclidean distance in that normalized space, ties to the lower grid
//! index), and carried in as a pseudo-observation at the snapped row's
//! features.  The surrogate learns from these [`Observation`]s exactly as
//! from real history — but they are never journaled, never counted as
//! measurements, and never shortcut a measurement the planner asks for
//! (exact-key store hits are the lookup path's job, not the remapper's).

use crate::planner::{Grid, Observation};
use acic::features::{encode, N_FEATURES};
use acic::store::{canonicalize, StoreSample};
use acic::Objective;

/// Cap on remapped priors: enough to shape the surrogate's opening
/// splits, small enough that real measurements take over quickly (each
/// real observation carries far more local signal than a remapped one).
pub const MAX_PRIORS: usize = 256;

/// Remap `samples` (any order, any app) onto `grid` as surrogate priors
/// for `objective`.  Deterministic: canonicalization fixes the sample
/// order, and every tie-break is by grid index.
pub fn remap(samples: &[StoreSample], grid: &Grid, objective: Objective) -> Vec<Observation> {
    if grid.is_empty() || samples.is_empty() {
        return Vec::new();
    }
    // Per-feature ranges of the target grid (the normalization frame).
    let mut lo = [f64::INFINITY; N_FEATURES];
    let mut hi = [f64::NEG_INFINITY; N_FEATURES];
    for row in &grid.rows {
        for (j, &v) in row.iter().enumerate() {
            lo[j] = lo[j].min(v);
            hi[j] = hi[j].max(v);
        }
    }
    let norm = |row: &[f64]| -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(j, &v)| {
                let span = hi[j] - lo[j];
                // Degenerate columns (the grid holds one value) carry no
                // distance signal; collapse them to 0 so a warm sample is
                // not penalized for differing where the grid cannot.
                if span > 0.0 {
                    (v - lo[j]) / span
                } else {
                    0.0
                }
            })
            .collect()
    };
    let grid_norm: Vec<Vec<f64>> = grid.rows.iter().map(|r| norm(r)).collect();

    let mut priors = Vec::new();
    for s in canonicalize(samples.to_vec()).into_iter().take(MAX_PRIORS) {
        let row = encode(&s.point.system, &s.point.app);
        let q = norm(&row);
        let mut best = (f64::INFINITY, 0usize);
        for (i, g) in grid_norm.iter().enumerate() {
            let d2: f64 = q.iter().zip(g).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 < best.0 {
                best = (d2, i);
            }
        }
        let target = match objective {
            Objective::Performance => s.point.perf_improvement,
            Objective::Cost => s.point.cost_improvement,
        };
        if target.is_finite() {
            priors.push(Observation { index: None, row: grid.rows[best.1].clone(), target });
        }
    }
    priors
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic::{CollectOptions, Trainer};

    fn store_samples(dims: usize, seed: u64) -> Vec<StoreSample> {
        let t = Trainer::with_paper_ranking(seed);
        let points = t.sample_points(dims);
        let c = t.collect_with(&points, &CollectOptions::default()).unwrap();
        let id = t.campaign_id(&points);
        c.db
            .points
            .iter()
            .enumerate()
            .map(|(i, &p)| StoreSample::new(id.fingerprint, seed, i, 1, p))
            .collect()
    }

    #[test]
    fn remap_is_deterministic_and_capped() {
        let t = Trainer::with_paper_ranking(3);
        let grid = Grid::new(&t.sample_points(4));
        let samples = store_samples(3, 99);
        let a = remap(&samples, &grid, Objective::Performance);
        let b = remap(&samples, &grid, Objective::Performance);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.len() <= MAX_PRIORS);
        assert!(a.len() <= samples.len());
    }

    #[test]
    fn remapped_rows_are_grid_rows() {
        let t = Trainer::with_paper_ranking(3);
        let grid = Grid::new(&t.sample_points(3));
        let samples = store_samples(4, 7);
        for o in remap(&samples, &grid, Objective::Cost) {
            assert!(o.index.is_none(), "priors are never grid measurements");
            assert!(
                grid.rows.iter().any(|r| r == &o.row),
                "prior row must be snapped onto the grid"
            );
            assert!(o.target.is_finite());
        }
    }

    #[test]
    fn exact_grid_samples_snap_to_themselves() {
        // A warm sample measured on exactly a grid point must snap to that
        // point (distance 0), keeping its own improvement as the prior.
        let t = Trainer::with_paper_ranking(3);
        let points = t.sample_points(3);
        let grid = Grid::new(&points);
        let samples = store_samples(3, 3);
        let priors = remap(&samples, &grid, Objective::Performance);
        assert_eq!(priors.len(), samples.len().min(MAX_PRIORS));
        for (o, s) in priors.iter().zip(canonicalize(samples)) {
            let own = encode(&s.point.system, &s.point.app);
            assert_eq!(o.row, own);
            assert_eq!(o.target, s.point.perf_improvement);
        }
    }

    #[test]
    fn empty_inputs_remap_to_nothing() {
        let t = Trainer::with_paper_ranking(3);
        let grid = Grid::new(&t.sample_points(2));
        assert!(remap(&[], &grid, Objective::Performance).is_empty());
        let empty = Grid::new(&[]);
        let samples = store_samples(2, 5);
        assert!(remap(&samples, &empty, Objective::Performance).is_empty());
    }
}
