//! # acic-search — model-guided adaptive campaign planning
//!
//! ACIC's biggest practical cost is the exhaustive training campaign: the
//! paper sweeps the full sampled space through the simulator before CART
//! can recommend anything (§5).  This crate replaces the enumeration with
//! a deterministic campaign *planner* that proposes measurement batches:
//!
//! * [`planner`] — the [`planner::Planner`] trait and its strategies:
//!   [`planner::PbRanked`] (the walk's ⟨S, s0, δ⟩ opening book as a batch
//!   planner), [`planner::RandomOrder`] (Figure 9's strawman),
//!   [`planner::Bandit`] (UCB over a CART surrogate refit online), and
//!   [`planner::Halving`] (successive halving over surrogate regions).
//! * [`budget`] — [`budget::Budget`] / [`budget::StopReason`]: max
//!   measurements, cost ceilings, plateau detection, typed errors.
//! * [`campaign`] — [`campaign::run_search`]: drives planner batches
//!   through the trainer's retry/journal/checkpoint path, answering
//!   already-measured points from the durable store
//!   (lookup-before-measure), and renders a byte-diffable [`campaign::Plan`].
//! * [`warm`] — cross-application warm start: another app's store
//!   samples, remapped in feature space onto the new grid as surrogate
//!   priors.
//! * [`walk`] — PB-guided space walking (paper §4.3), moved here from
//!   `acic::walk` so Figure 9 and the planners share one ordering code
//!   path.
//!
//! Everything is deterministic by construction: planner randomness is
//! seeded from `(campaign fingerprint, round)`, tie-breaks fall back to
//! grid indices, and a killed campaign resumes bit-identically from its
//! journal plus store.

pub mod budget;
pub mod campaign;
pub mod planner;
pub mod walk;
pub mod warm;

pub use budget::{Budget, SearchError, StopReason};
pub use campaign::{run_search, Plan, PlanRound, SearchConfig, SearchOutcome};
pub use planner::{Grid, Observation, PlanContext, Planner, Strategy};
pub use walk::{guided_walk, opening_book, random_walk, walk_with, WalkOutcome};
pub use warm::remap;
