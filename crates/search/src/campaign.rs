//! The adaptive campaign driver: planner batches through the trainer's
//! retry/journal/checkpoint path, with budgets, warm start, and a
//! rendered, byte-diffable [`Plan`].
//!
//! ## Determinism and resume contract
//!
//! The driver never owns state a journal cannot reconstruct.  Each round
//! it hands the planner the *cumulative* collection (rebuilt from the
//! trainer's output, which itself is rebuilt from the journal on resume)
//! and collects the cumulative proposal set as one subset campaign:
//!
//! * Every point's seed derives from `(campaign seed, grid index)`, so a
//!   subset measurement is bit-identical to the exhaustive campaign's
//!   measurement of the same point.
//! * Planner randomness derives from `(campaign fingerprint, round)`, and
//!   every tie-break falls back to the grid index.
//! * A killed campaign resumed with the same configuration replays the
//!   same rounds: prior-round points are answered by the journal (or the
//!   store), the planner sees identical observations, and proposes
//!   identical batches — the rendered plan is byte-identical.

use crate::budget::{Budget, SearchError, StopReason};
use crate::planner::{Grid, Observation, PlanContext, Strategy};
use acic::journal::CampaignId;
use acic::space::SpacePoint;
use acic::store::{SampleLookup, StoreSample};
use acic::{Collection, CollectOptions, Metrics, Objective, Trainer};
use std::collections::BTreeSet;
use std::path::Path;

/// Configuration of one adaptive search campaign.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig<'a> {
    /// Which planner proposes batches.
    pub strategy: Strategy,
    /// What the campaign may spend.
    pub budget: Budget,
    /// Which improvement the planner maximizes (and the plan reports).
    pub objective: Objective,
    /// Checkpoint journal (same semantics as exhaustive campaigns).
    pub journal: Option<&'a Path>,
    /// Observability sink for `search.*` counters.
    pub metrics: Option<&'a Metrics>,
    /// Lookup-before-measure index; hits cost no budget.
    pub lookup: Option<&'a SampleLookup>,
    /// Warm-start samples remapped into surrogate priors (empty = cold).
    pub warm: &'a [StoreSample],
}

impl<'a> SearchConfig<'a> {
    /// A cold campaign with no journal, metrics, or store.
    pub fn new(strategy: Strategy, budget: Budget, objective: Objective) -> Self {
        Self { strategy, budget, objective, journal: None, metrics: None, lookup: None, warm: &[] }
    }
}

/// One round of the executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRound {
    /// Round number (0-based).
    pub round: usize,
    /// Grid indices the planner proposed this round (plan order).
    pub proposed: Vec<usize>,
    /// Campaign measurements after this round (simulated points; store
    /// hits excluded).
    pub measurements: usize,
    /// Store-answered points after this round.
    pub store_hits: usize,
    /// Best observed improvement after this round.
    pub best: f64,
}

/// The executed search plan: what was proposed, measured, and why the
/// campaign stopped.  [`Plan::render`] is the byte-diffable artifact the
/// tier-1 gate compares across reruns and kill→resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Planner name.
    pub strategy: &'static str,
    /// The campaign this plan searched.
    pub campaign: CampaignId,
    /// Objective the planner maximized.
    pub objective: Objective,
    /// The budget in force.
    pub budget: Budget,
    /// Warm-start priors fed to the surrogate.
    pub warm_priors: usize,
    /// The executed rounds.
    pub rounds: Vec<PlanRound>,
    /// Why the campaign stopped.
    pub stop: StopReason,
}

impl Plan {
    /// Total simulated measurements.
    pub fn measurements(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.measurements)
    }

    /// Total store-answered points.
    pub fn store_hits(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.store_hits)
    }

    /// Best observed improvement.
    pub fn best(&self) -> Option<f64> {
        self.rounds.last().map(|r| r.best)
    }

    /// Render as a versioned, line-oriented text artifact.  Two campaigns
    /// produce byte-identical renders iff they planned and measured
    /// identically (f64 fields print Rust's shortest round-trip form).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "acic-plan v1").unwrap();
        writeln!(
            s,
            "campaign seed={} points={} fingerprint={:016x}",
            self.campaign.seed, self.campaign.points, self.campaign.fingerprint
        )
        .unwrap();
        let cost = self.budget.max_cost_usd.map_or("-".to_string(), |c| c.to_string());
        let plateau = self.budget.plateau_rounds.map_or("-".to_string(), |p| p.to_string());
        writeln!(
            s,
            "strategy={} objective={} budget={} batch={} max_cost={} plateau={} warm_priors={}",
            self.strategy,
            match self.objective {
                Objective::Performance => "perf",
                Objective::Cost => "cost",
            },
            self.budget.max_measurements,
            self.budget.batch,
            cost,
            plateau,
            self.warm_priors
        )
        .unwrap();
        for r in &self.rounds {
            let ixs: Vec<String> = r.proposed.iter().map(|i| i.to_string()).collect();
            writeln!(
                s,
                "round\t{}\tmeasured={}\tstore_hits={}\tbest={}\tproposed={}",
                r.round,
                r.measurements,
                r.store_hits,
                r.best,
                ixs.join(",")
            )
            .unwrap();
        }
        writeln!(
            s,
            "stop\t{}\trounds={}\tmeasurements={}\tstore_hits={}",
            self.stop.code(),
            self.rounds.len(),
            self.measurements(),
            self.store_hits()
        )
        .unwrap();
        s
    }
}

/// A finished search campaign: the partial collection (ready for store
/// ingest / model fitting) plus the executed plan.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The collected (partial) database and its report, exactly as an
    /// exhaustive campaign over the measured subset would return.
    pub collection: Collection,
    /// What happened, round by round.
    pub plan: Plan,
    /// Grid index of the best measured point (by the campaign objective).
    pub best_index: Option<usize>,
}

/// Run an adaptive campaign of `cfg.strategy` over `points` (the full
/// grid the campaign *would* measure exhaustively; the planner decides
/// which fraction actually runs).
pub fn run_search(
    trainer: &Trainer,
    points: &[SpacePoint],
    cfg: &SearchConfig,
) -> Result<SearchOutcome, SearchError> {
    cfg.budget.validate()?;
    if points.is_empty() {
        return Err(SearchError::EmptyGrid);
    }
    let id = trainer.campaign_id(points);
    let grid = Grid::new(points);
    let priors = crate::warm::remap(cfg.warm, &grid, cfg.objective);
    let mut planner = cfg.strategy.instantiate();

    let mut proposed: BTreeSet<usize> = BTreeSet::new();
    let mut history: Vec<Observation> = Vec::new();
    let mut rounds: Vec<PlanRound> = Vec::new();
    let mut collection: Option<Collection> = None;
    let mut measurements = 0usize;
    let mut best: Option<f64> = None;
    let mut flat_rounds = 0usize;

    let stop = loop {
        if measurements >= cfg.budget.max_measurements {
            break StopReason::Budget;
        }
        let round = rounds.len();
        let limit = cfg.budget.batch.min(cfg.budget.max_measurements - measurements);
        let ctx = PlanContext {
            fingerprint: id.fingerprint,
            round,
            limit,
            grid: &grid,
            history: &history,
            priors: &priors,
            proposed: &proposed,
        };
        let batch = planner.plan(&ctx);
        if let Some(&bad) = batch.iter().find(|&&i| i >= grid.len()) {
            return Err(SearchError::BadProposal { round, index: bad, grid: grid.len() });
        }
        let batch: Vec<usize> =
            batch.into_iter().filter(|i| !proposed.contains(i)).take(limit).collect();
        if batch.is_empty() {
            break StopReason::Exhausted;
        }
        proposed.extend(batch.iter().copied());

        // One cumulative subset collection per round: earlier rounds are
        // answered by the journal (or the store), this round simulates.
        let subset: Vec<usize> = proposed.iter().copied().collect();
        let opts = CollectOptions {
            journal: cfg.journal,
            metrics: None, // cumulative re-collection would multi-count
            strict: false,
            subset: Some(&subset),
            lookup: cfg.lookup,
        };
        let col = trainer.collect_with(points, &opts)?;

        // Campaign-level accounting: every wanted point was either
        // simulated (this session or journaled) or answered by the store.
        measurements = col.report.planned - col.report.store_hits;
        history = col
            .report
            .point_log
            .iter()
            .zip(&col.db.points)
            .map(|(prov, tp)| Observation {
                index: Some(prov.index),
                row: grid.rows[prov.index].clone(),
                target: match cfg.objective {
                    Objective::Performance => tp.perf_improvement,
                    Objective::Cost => tp.cost_improvement,
                },
            })
            .collect();
        let best_now = history
            .iter()
            .map(|o| o.target)
            .fold(f64::NEG_INFINITY, f64::max);
        let improved = match best {
            None => best_now.is_finite(),
            Some(b) => best_now > b + Budget::PLATEAU_EPSILON * b.abs().max(1.0),
        };
        if improved {
            flat_rounds = 0;
            best = Some(best_now);
        } else {
            flat_rounds += 1;
        }
        rounds.push(PlanRound {
            round,
            proposed: batch,
            measurements,
            store_hits: col.report.store_hits,
            best: best.unwrap_or(f64::NEG_INFINITY),
        });
        let cost_so_far = col.db.collect_cost_usd;
        collection = Some(col);
        if let Some(p) = cfg.budget.plateau_rounds {
            if flat_rounds >= p {
                break StopReason::Plateau;
            }
        }
        if let Some(cap) = cfg.budget.max_cost_usd {
            if cost_so_far >= cap {
                break StopReason::Cost;
            }
        }
    };

    let collection = collection.unwrap_or_else(|| Collection {
        db: Default::default(),
        report: Default::default(),
    });
    let plan = Plan {
        strategy: cfg.strategy.name(),
        campaign: id,
        objective: cfg.objective,
        budget: cfg.budget,
        warm_priors: priors.len(),
        rounds,
        stop,
    };
    let best_index = history
        .iter()
        .max_by(|a, b| a.target.total_cmp(&b.target).then_with(|| b.index.cmp(&a.index)))
        .and_then(|o| o.index);

    if let Some(m) = cfg.metrics {
        m.incr("search.rounds", plan.rounds.len() as u64);
        m.incr("search.measurements", plan.measurements() as u64);
        m.incr("search.store_hits", plan.store_hits() as u64);
        m.incr("search.warm_priors", plan.warm_priors as u64);
        // The per-round improvement curve (bench_search turns this into
        // regret against the exhaustive ground truth).
        for r in &plan.rounds {
            if r.best.is_finite() {
                m.observe_secs(&format!("search.round{:02}.best", r.round), r.best);
            }
        }
    }

    Ok(SearchOutcome { collection, plan, best_index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic::Trainer;

    fn trainer() -> Trainer {
        Trainer::with_paper_ranking(7)
    }

    #[test]
    fn budget_caps_measurements_exactly() {
        let t = trainer();
        let points = t.sample_points(4);
        for strategy in Strategy::ALL {
            let cfg = SearchConfig::new(
                strategy,
                Budget::measurements(10).with_batch(4),
                Objective::Performance,
            );
            let out = run_search(&t, &points, &cfg).unwrap();
            assert_eq!(out.plan.measurements(), 10, "{}", strategy.name());
            assert_eq!(out.plan.stop, StopReason::Budget, "{}", strategy.name());
            assert_eq!(out.collection.db.len(), 10);
            assert!(out.best_index.is_some());
            assert!(out.plan.measurements() < points.len(), "search must undercut the grid");
        }
    }

    #[test]
    fn plans_are_bit_identical_across_reruns() {
        let t = trainer();
        let points = t.sample_points(4);
        for strategy in Strategy::ALL {
            let cfg = SearchConfig::new(
                strategy,
                Budget::measurements(12).with_batch(5),
                Objective::Cost,
            );
            let a = run_search(&t, &points, &cfg).unwrap();
            let b = run_search(&t, &points, &cfg).unwrap();
            assert_eq!(a.plan, b.plan, "{}", strategy.name());
            assert_eq!(a.plan.render(), b.plan.render());
            assert_eq!(a.collection.db, b.collection.db);
        }
    }

    #[test]
    fn oversized_budgets_exhaust_the_grid() {
        let t = trainer();
        let points = t.sample_points(2);
        let cfg = SearchConfig::new(
            Strategy::PbRanked,
            Budget::measurements(10_000).with_batch(16),
            Objective::Performance,
        );
        let out = run_search(&t, &points, &cfg).unwrap();
        assert_eq!(out.plan.stop, StopReason::Exhausted);
        assert_eq!(out.plan.measurements(), points.len());
        assert_eq!(out.collection.db.len(), points.len());
        // An exhausted search is exactly the exhaustive campaign.
        let full = t.collect_points(&points).unwrap();
        assert_eq!(out.collection.db, full);
    }

    #[test]
    fn plateau_rule_stops_flat_campaigns() {
        let t = trainer();
        let points = t.sample_points(4);
        let cfg = SearchConfig::new(
            Strategy::Bandit,
            Budget::measurements(points.len()).with_batch(3).with_plateau(2),
            Objective::Performance,
        );
        let out = run_search(&t, &points, &cfg).unwrap();
        // With a budget as large as the grid, only the plateau (or full
        // exhaustion) can stop it — and a 3-per-round campaign over this
        // grid flattens long before the end.
        assert!(
            matches!(out.plan.stop, StopReason::Plateau | StopReason::Exhausted),
            "{:?}",
            out.plan.stop
        );
        if out.plan.stop == StopReason::Plateau {
            assert!(out.plan.measurements() < points.len());
        }
    }

    #[test]
    fn cost_ceiling_stops_spending() {
        let t = trainer();
        let points = t.sample_points(4);
        let free = SearchConfig::new(
            Strategy::PbRanked,
            Budget::measurements(20).with_batch(4),
            Objective::Performance,
        );
        let unbounded = run_search(&t, &points, &free).unwrap();
        let spent = unbounded.collection.db.collect_cost_usd;
        assert!(spent > 0.0);
        let capped_cfg = SearchConfig {
            budget: Budget::measurements(20).with_batch(4).with_max_cost(spent / 2.0),
            ..free
        };
        let capped = run_search(&t, &points, &capped_cfg).unwrap();
        assert_eq!(capped.plan.stop, StopReason::Cost);
        assert!(capped.plan.measurements() < unbounded.plan.measurements());
    }

    #[test]
    fn empty_grid_and_bad_budget_are_typed_errors() {
        let t = trainer();
        let cfg = SearchConfig::new(
            Strategy::Bandit,
            Budget::measurements(5),
            Objective::Performance,
        );
        assert_eq!(run_search(&t, &[], &cfg).unwrap_err(), SearchError::EmptyGrid);
        let bad = SearchConfig { budget: Budget::measurements(0), ..cfg };
        let points = t.sample_points(1);
        assert!(matches!(
            run_search(&t, &points, &bad).unwrap_err(),
            SearchError::InvalidBudget(_)
        ));
    }

    #[test]
    fn rendered_plans_carry_the_campaign_identity() {
        let t = trainer();
        let points = t.sample_points(3);
        let cfg = SearchConfig::new(
            Strategy::Halving,
            Budget::measurements(8).with_batch(4),
            Objective::Performance,
        );
        let out = run_search(&t, &points, &cfg).unwrap();
        let text = out.plan.render();
        assert!(text.starts_with("acic-plan v1\n"), "{text}");
        let id = t.campaign_id(&points);
        assert!(text.contains(&format!("fingerprint={:016x}", id.fingerprint)), "{text}");
        assert!(text.contains("strategy=halving"), "{text}");
        assert!(text.contains("stop\tbudget"), "{text}");
    }

    #[test]
    fn search_metrics_are_emitted() {
        let m = Metrics::new();
        let t = trainer();
        let points = t.sample_points(3);
        let cfg = SearchConfig {
            metrics: Some(&m),
            ..SearchConfig::new(
                Strategy::Bandit,
                Budget::measurements(6).with_batch(3),
                Objective::Performance,
            )
        };
        let out = run_search(&t, &points, &cfg).unwrap();
        assert_eq!(m.counter("search.measurements"), out.plan.measurements() as u64);
        assert_eq!(m.counter("search.rounds"), out.plan.rounds.len() as u64);
        assert!(m.total_secs("search.round00.best") > 0.0);
    }
}
