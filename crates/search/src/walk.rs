//! PB-guided space walking — the low-training-budget predictor (paper
//! §4.3) — plus the random-walk strawman it is compared against in
//! Figure 9.
//!
//! The walk is the triple ⟨S, s0, δ⟩: S is the *system* configuration
//! space, s0 the baseline configuration, and δ the greedy strategy that
//! walks the system dimensions in PB-rank order, sampling each dimension's
//! values with real (here: simulated) IOR runs of the target application's
//! characteristics and fixing the best value before moving on.
//!
//! The same ⟨S, s0, δ⟩ machinery seeds the adaptive campaign planners of
//! [`crate::planner`]: [`opening_book`] orders a *grid* of points by their
//! distance from s0 in perturbed dimensions — single-dimension probes
//! first, exactly the order δ explores — giving every planner a shared
//! deterministic cold-start order.  (This module moved here from
//! `acic::walk` so Figure 9 and the planners share one code path.)

use acic::space::{AppPoint, ParamId, SpacePoint, SystemConfig};
use acic::{AcicError, Objective};
use acic_cloudsim::rng::SplitMix64;
use acic_iobench::run_ior;

/// Result of one walk.
#[derive(Debug, Clone)]
pub struct WalkOutcome {
    /// The configuration the walk settled on.
    pub config: SystemConfig,
    /// IOR test runs spent (the walk's training budget).
    pub runs: usize,
    /// Simulated money spent on those runs, USD.
    pub cost_usd: f64,
    /// The best observed metric along the walk (lower is better).
    pub best_metric: f64,
    /// Candidates whose measurement errored or returned a non-finite
    /// metric.  Such candidates can never be fixed as a dimension's "best"
    /// — the walk keeps the incumbent value and moves on, so a dimension
    /// whose every candidate fails degrades to a no-op instead of
    /// poisoning the result or aborting the whole walk.
    pub skipped: usize,
}

/// The system-side dimensions in walking order for the given ranking
/// (non-system parameters in the ranking are skipped — the application
/// half is fixed by the query).
fn system_dims(ranking: &[ParamId]) -> Vec<ParamId> {
    ranking.iter().copied().filter(|p| p.is_system()).collect()
}

/// Evaluate one candidate with an IOR run of the app's characteristics.
fn measure(
    system: &SystemConfig,
    app: &AppPoint,
    objective: Objective,
    seed: u64,
) -> Result<(f64, f64), AcicError> {
    let report = run_ior(&system.to_io_system(app.nprocs), &app.to_ior(), seed)?;
    Ok((objective.metric(&report), report.cost))
}

/// Walk the system configuration space in the order given by `ranking`
/// (PB-guided when the ranking comes from the reducer; any order works,
/// which is how the random walk reuses this).
pub fn guided_walk(
    ranking: &[ParamId],
    app: &AppPoint,
    objective: Objective,
    seed: u64,
) -> Result<WalkOutcome, AcicError> {
    walk_with(ranking, app, objective, seed, &mut measure)
}

/// The walk engine with an injectable measurement function (tests use
/// this to exercise failing candidates without a failable simulator).
///
/// Failure policy: the baseline (s0) measurement must succeed with a
/// finite metric — there is nothing to anchor the walk otherwise, so it
/// fails with a typed error.  Candidate failures (errors or non-finite
/// metrics) only skip that candidate: the dimension keeps its incumbent
/// value, `skipped` counts the loss, and the walk continues.  A
/// non-finite metric can therefore never be fixed as a "best" value.
pub fn walk_with(
    ranking: &[ParamId],
    app: &AppPoint,
    objective: Objective,
    seed: u64,
    measure: &mut dyn FnMut(&SystemConfig, &AppPoint, Objective, u64) -> Result<(f64, f64), AcicError>,
) -> Result<WalkOutcome, AcicError> {
    let app = app.normalized();
    let mut current = SystemConfig::baseline();
    let mut runs = 0usize;
    let mut cost = 0.0f64;
    let mut skipped = 0usize;

    // Baseline measurement anchors the walk (s0).
    let (mut best_metric, c0) = measure(&current, &app, objective, seed)?;
    if !best_metric.is_finite() {
        return Err(AcicError::Invalid(format!(
            "baseline measurement produced a non-finite {objective:?} metric ({best_metric}); \
             the walk has no anchor"
        )));
    }
    runs += 1;
    cost += c0;

    for dim in system_dims(ranking) {
        // Sample every value of this dimension with the rest held fixed.
        // The walk constructs configurations dimension-wise rather than
        // drawing from the enumerated grid, so it deliberately does not go
        // through `CandidateMatrix` — its `valid_for` checks are on points
        // the matrix's fixed universe need not contain.
        let mut best_here = current;
        for index in 0..dim.value_count() {
            let mut p = SpacePoint { system: current, app };
            dim.apply(index, &mut p);
            let candidate = p.system.normalized();
            if candidate == current || !candidate.valid_for(app.nprocs) {
                continue;
            }
            match measure(&candidate, &app, objective, seed.wrapping_add(runs as u64)) {
                Ok((metric, run_cost)) if metric.is_finite() => {
                    runs += 1;
                    cost += run_cost;
                    if metric < best_metric {
                        best_metric = metric;
                        best_here = candidate;
                    }
                }
                Ok((_, run_cost)) => {
                    // The run happened (and is paid for) but its metric is
                    // unusable; it must not win the dimension.
                    runs += 1;
                    cost += run_cost;
                    skipped += 1;
                }
                Err(_) => skipped += 1,
            }
        }
        current = best_here;
    }

    Ok(WalkOutcome { config: current, runs, cost_usd: cost, best_metric, skipped })
}

/// One random-ordering walk (Figure 9's strawman): the same greedy
/// procedure over a uniformly shuffled dimension order.
pub fn random_walk(
    app: &AppPoint,
    objective: Objective,
    seed: u64,
) -> Result<WalkOutcome, AcicError> {
    let mut order = ParamId::ALL.to_vec();
    let mut rng = SplitMix64::new(seed);
    rng.shuffle(&mut order);
    guided_walk(&order, app, objective, rng.next_u64())
}

/// The walk's ⟨S, s0, δ⟩ ordering generalized to an enumerated grid: rank
/// every row by how many feature coordinates differ from the s0 row
/// (bit-exact comparison, ties broken by grid index, which inherits the
/// PB-rank odometer order of `Trainer::sample_points`).  Rows perturbing a
/// single dimension come first — the opening book every planner uses
/// before it has observations to learn from.
pub fn opening_book(rows: &[Vec<f64>], s0: &[f64]) -> Vec<usize> {
    let diffs: Vec<usize> = rows
        .iter()
        .map(|r| {
            r.iter()
                .zip(s0)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count()
        })
        .collect();
    let mut ix: Vec<usize> = (0..rows.len()).collect();
    ix.sort_by_key(|&i| (diffs[i], i));
    ix
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic::Trainer;
    use acic_cloudsim::units::mib;

    fn app() -> AppPoint {
        let mut a = SpacePoint::default_point().app;
        a.data_size = mib(128.0);
        a.collective = true;
        a
    }

    #[test]
    fn walk_never_loses_to_the_baseline() {
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let w = guided_walk(&ranking, &app(), Objective::Performance, 3).unwrap();
        let (baseline_metric, _) =
            measure(&SystemConfig::baseline(), &app(), Objective::Performance, 3).unwrap();
        assert!(
            w.best_metric <= baseline_metric,
            "greedy walk must end at least as good as s0"
        );
        assert!(w.config.valid_for(64));
    }

    #[test]
    fn walk_budget_is_linear_in_dimensions() {
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let w = guided_walk(&ranking, &app(), Objective::Cost, 5).unwrap();
        // 6 system dims with 2–3 values each: far under the 28-candidate
        // exhaustive sweep.  When the walk stays on NFS, the server-count
        // and stripe dimensions collapse (normalization makes their
        // candidates equal the current config), so as few as 5 runs
        // suffice; the ceiling is 1 + Σ over dims of (values − 1) + the
        // extra NFS→PVFS2 probes ≈ 12.
        assert!(w.runs >= 5 && w.runs <= 14, "runs = {}", w.runs);
        assert!(w.cost_usd > 0.0);
    }

    #[test]
    fn random_walks_vary_with_seed() {
        let a = app();
        let outcomes: Vec<String> = (0..6)
            .map(|s| random_walk(&a, Objective::Performance, s).unwrap().config.notation())
            .collect();
        let distinct: std::collections::BTreeSet<&String> = outcomes.iter().collect();
        // Not a hard guarantee, but over 6 seeds the orderings should not
        // all collapse to one answer in a space with real trade-offs.
        assert!(!distinct.is_empty());
    }

    #[test]
    fn erroring_candidates_skip_instead_of_aborting_or_winning() {
        // Pre-fix, guided_walk propagated any candidate measurement error
        // with `?`, aborting the entire walk.  Now a dimension whose every
        // candidate fails must degrade to a no-op: baseline config kept,
        // baseline metric intact, failures counted.
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let a = app();
        let baseline = SystemConfig::baseline();
        let mut failures = 0usize;
        let w = walk_with(&ranking, &a, Objective::Performance, 3, &mut |sys, app, obj, seed| {
            if *sys == SystemConfig::baseline() {
                measure(sys, app, obj, seed)
            } else {
                failures += 1;
                Err(AcicError::Invalid("injected candidate failure".into()))
            }
        })
        .unwrap();
        assert_eq!(w.config, baseline, "no candidate may win via a failed measurement");
        assert_eq!(w.runs, 1, "only the baseline ran");
        assert!(w.skipped > 0 && w.skipped == failures);
        assert!(w.best_metric.is_finite());
    }

    #[test]
    fn nan_candidates_never_fix_a_bogus_best() {
        // A NaN metric compares false against everything; pre-fix it was
        // silently dropped without being counted, and an all-NaN dimension
        // left no trace.  It must be counted as skipped and never win.
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let a = app();
        let w = walk_with(&ranking, &a, Objective::Performance, 3, &mut |sys, app, obj, seed| {
            if *sys == SystemConfig::baseline() {
                measure(sys, app, obj, seed)
            } else {
                Ok((f64::NAN, 0.01))
            }
        })
        .unwrap();
        assert_eq!(w.config, SystemConfig::baseline());
        assert!(w.best_metric.is_finite(), "NaN leaked into best_metric");
        assert!(w.skipped > 0);
        assert!(w.runs > 1, "NaN runs still happened and are paid for");
    }

    #[test]
    fn non_finite_baseline_is_a_typed_error() {
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let a = app();
        let err = walk_with(&ranking, &a, Objective::Performance, 3, &mut |_, _, _, _| {
            Ok((f64::NAN, 0.0))
        })
        .unwrap_err();
        match err {
            AcicError::Invalid(msg) => assert!(msg.contains("anchor"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn clean_walks_report_zero_skips() {
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let w = guided_walk(&ranking, &app(), Objective::Performance, 3).unwrap();
        assert_eq!(w.skipped, 0);
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let ranking = Trainer::with_paper_ranking(0).ranking;
        let a = app();
        let w1 = guided_walk(&ranking, &a, Objective::Performance, 9).unwrap();
        let w2 = guided_walk(&ranking, &a, Objective::Performance, 9).unwrap();
        assert_eq!(w1.config, w2.config);
        assert_eq!(w1.runs, w2.runs);
    }

    #[test]
    fn opening_book_orders_by_perturbation_count_then_index() {
        let s0 = vec![0.0, 0.0, 0.0];
        let rows = vec![
            vec![1.0, 1.0, 1.0], // 3 diffs
            vec![0.0, 0.0, 0.0], // 0 diffs (s0 itself)
            vec![0.0, 1.0, 0.0], // 1 diff
            vec![1.0, 0.0, 0.0], // 1 diff
            vec![1.0, 1.0, 0.0], // 2 diffs
        ];
        assert_eq!(opening_book(&rows, &s0), vec![1, 2, 3, 4, 0]);
    }
}
