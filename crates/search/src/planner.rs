//! Campaign planners: deterministic strategies that propose which grid
//! points to measure next.
//!
//! A [`Planner`] is a *pure* function of the [`PlanContext`] it is handed:
//! the campaign fingerprint, the round number, and the observations
//! accumulated so far.  Nothing else — no wall clock, no global RNG, no
//! iteration order over hash maps — may influence a plan.  That is the
//! determinism contract that makes adaptive campaigns resumable: replaying
//! the same rounds against the same journal reconstructs bit-identical
//! plans, because every source of randomness is seeded from
//! `(fingerprint, round)` and every tie-break falls back to the grid
//! index.

use crate::walk::opening_book;
use acic::features::{encode, schema};
use acic::space::SpacePoint;
use acic_cart::{Dataset, Model, ModelKind, Node, Tree};
use acic_cloudsim::rng::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};

/// UCB exploration weight (times the leaf std).
const EXPLORE_C: f64 = 0.6;
/// Depth at which the surrogate tree partitions the grid into regions for
/// successive halving (≤ 2^3 = 8 regions from the top splits).
const REGION_DEPTH: usize = 3;
/// Salt separating the random strawman's shuffle stream from everything
/// else derived from the campaign fingerprint.
const RANDOM_SALT: u64 = 0x5261_6e64_6f6d_u64; // "Random"
/// Salt for the bandit's per-round tie-break jitter stream.
const BANDIT_SALT: u64 = 0x4261_6e64_6974_u64; // "Bandit"

/// One observed (or warm-start pseudo-observed) grid measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Grid index for real measurements; `None` for warm-start priors
    /// remapped from another application's store.
    pub index: Option<usize>,
    /// Encoded feature row (the 15-dimensional Table 1 encoding).
    pub row: Vec<f64>,
    /// Improvement over the baseline for the campaign's objective
    /// (higher is better).
    pub target: f64,
}

/// The campaign grid a planner searches: the points, their encoded
/// feature rows, and the walk-derived opening-book order.
#[derive(Debug, Clone)]
pub struct Grid {
    /// The campaign's point list (index = campaign index).
    pub points: Vec<SpacePoint>,
    /// Encoded feature rows, parallel to `points`.
    pub rows: Vec<Vec<f64>>,
    /// All grid indices ordered by the walk's ⟨S, s0, δ⟩ opening book:
    /// fewest dimensions perturbed from the default point first.
    pub opening: Vec<usize>,
}

impl Grid {
    /// Encode a campaign point list.
    pub fn new(points: &[SpacePoint]) -> Self {
        let rows: Vec<Vec<f64>> = points.iter().map(|p| encode(&p.system, &p.app)).collect();
        let s0 = {
            let d = SpacePoint::default_point().normalized();
            encode(&d.system, &d.app)
        };
        let opening = opening_book(&rows, &s0);
        Self { points: points.to_vec(), rows, opening }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Everything a planner may condition a batch on.
#[derive(Debug)]
pub struct PlanContext<'a> {
    /// Campaign fingerprint (seeds all planner randomness).
    pub fingerprint: u64,
    /// Round number, 0-based (seeds per-round exploration).
    pub round: usize,
    /// Maximum indices to propose this round.
    pub limit: usize,
    /// The campaign grid.
    pub grid: &'a Grid,
    /// Successful measurements so far (grid observations only).
    pub history: &'a [Observation],
    /// Warm-start pseudo-observations (surrogate food, never measured).
    pub priors: &'a [Observation],
    /// Grid indices already proposed in earlier rounds (measured, answered
    /// from the store, or skipped — never proposed twice either way).
    pub proposed: &'a BTreeSet<usize>,
}

impl PlanContext<'_> {
    /// Unproposed indices in opening-book order.
    fn unproposed_opening(&self) -> impl Iterator<Item = usize> + '_ {
        self.grid.opening.iter().copied().filter(|i| !self.proposed.contains(i))
    }

    /// Unproposed indices in ascending grid order.
    fn unproposed_ascending(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.grid.len()).filter(|i| !self.proposed.contains(i))
    }

    /// A coverage-first cold-start batch: `limit` unproposed indices spread
    /// evenly across the opening-book order (always including its head),
    /// so the first surrogate fit sees both s0's neighborhood and the far
    /// side of the grid instead of `limit` near-identical perturbations.
    fn stratified_opening(&self, limit: usize) -> Vec<usize> {
        let v: Vec<usize> = self.unproposed_opening().collect();
        if v.len() <= limit || limit == 0 {
            return v;
        }
        (0..limit).map(|k| v[k * v.len() / limit]).collect()
    }

    /// Fit the CART surrogate on priors + history (campaign-fingerprint
    /// seed, so refits are reproducible).  `None` when there is nothing to
    /// learn from yet.
    fn surrogate(&self) -> Option<Model> {
        if self.history.is_empty() && self.priors.is_empty() {
            return None;
        }
        let mut d = Dataset::new(schema());
        for o in self.priors.iter().chain(self.history) {
            d.push(o.row.clone(), o.target);
        }
        Some(Model::fit(&d, ModelKind::Cart, self.fingerprint))
    }
}

/// A batch-proposing campaign strategy.
pub trait Planner {
    /// Stable name (used in rendered plans and metrics).
    fn name(&self) -> &'static str;

    /// Propose up to `ctx.limit` unproposed grid indices for this round.
    /// An empty batch means the planner has nothing left to propose.
    fn plan(&mut self, ctx: &PlanContext) -> Vec<usize>;
}

/// Which planner to run (parsed from `--search`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// PB-ranking opening-book order (the walk's ⟨S, s0, δ⟩ as a batch
    /// planner; deterministic baseline).
    PbRanked,
    /// Uniformly shuffled order (Figure 9's random-walk strawman as a
    /// batch planner).
    Random,
    /// UCB acquisition over the CART surrogate.
    Bandit,
    /// Successive halving over surrogate-partitioned regions.
    Halving,
}

impl Strategy {
    /// All strategies, for iteration in benches/tests.
    pub const ALL: [Strategy; 4] =
        [Strategy::PbRanked, Strategy::Random, Strategy::Bandit, Strategy::Halving];

    /// Stable name (matches `--search` spellings).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::PbRanked => "pb",
            Strategy::Random => "random",
            Strategy::Bandit => "bandit",
            Strategy::Halving => "halving",
        }
    }

    /// Build the planner this strategy names.
    pub fn instantiate(&self) -> Box<dyn Planner> {
        match self {
            Strategy::PbRanked => Box::new(PbRanked),
            Strategy::Random => Box::new(RandomOrder),
            Strategy::Bandit => Box::new(Bandit),
            Strategy::Halving => Box::new(Halving),
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pb" | "pb-ranked" | "pbranked" => Ok(Strategy::PbRanked),
            "random" => Ok(Strategy::Random),
            "bandit" | "ucb" => Ok(Strategy::Bandit),
            "halving" | "sh" => Ok(Strategy::Halving),
            other => Err(format!("unknown search strategy {other:?} (pb, random, bandit, halving)")),
        }
    }
}

/// PB-ranking order: propose the opening book front to back.  This is the
/// walk's δ as a batch planner — single-dimension perturbations first, in
/// PB-rank odometer order — and the deterministic non-adaptive baseline
/// the adaptive planners are compared against.
pub struct PbRanked;

impl Planner for PbRanked {
    fn name(&self) -> &'static str {
        "pb"
    }

    fn plan(&mut self, ctx: &PlanContext) -> Vec<usize> {
        ctx.unproposed_opening().take(ctx.limit).collect()
    }
}

/// The random strawman: a fingerprint-seeded uniform shuffle of the grid,
/// proposed front to back.  (Figure 9's random walk, as a batch planner.)
pub struct RandomOrder;

impl Planner for RandomOrder {
    fn name(&self) -> &'static str {
        "random"
    }

    fn plan(&mut self, ctx: &PlanContext) -> Vec<usize> {
        let mut order: Vec<usize> = (0..ctx.grid.len()).collect();
        let mut rng = SplitMix64::new(ctx.fingerprint ^ RANDOM_SALT);
        rng.shuffle(&mut order);
        order.retain(|i| !ctx.proposed.contains(i));
        order.truncate(ctx.limit);
        order
    }
}

/// UCB over the CART surrogate: score every unmeasured point by
/// `predicted improvement + C · std · sqrt(ln(1 + observations) /
/// support)` and propose the best.  The leaf std is floored at a fraction
/// of the observed target spread so pure leaves (std 0) keep a nonzero
/// exploration term, and a per-(fingerprint, round) jitter far below any
/// real score difference breaks exact score ties without ever reordering
/// distinguishable candidates — plans stay bit-reproducible.
pub struct Bandit;

impl Planner for Bandit {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn plan(&mut self, ctx: &PlanContext) -> Vec<usize> {
        let model = match ctx.surrogate() {
            Some(m) => m,
            None => return ctx.stratified_opening(ctx.limit),
        };
        let total = (ctx.priors.len() + ctx.history.len()) as f64;
        let spread = target_spread(ctx);
        let mut rng = SplitMix64::new(ctx.fingerprint ^ BANDIT_SALT).derive(ctx.round as u64);
        // Jitter is drawn in ascending grid order — the iteration order is
        // part of the determinism contract.
        let mut scored: Vec<(f64, usize)> = ctx
            .unproposed_ascending()
            .map(|i| {
                let p = model.predict(&ctx.grid.rows[i]);
                let explore = EXPLORE_C
                    * p.std.max(0.05 * spread)
                    * ((1.0 + total).ln() / p.support.max(1) as f64).sqrt();
                let jitter = 1e-9 * spread * rng.next_f64();
                (p.value + explore + jitter, i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().take(ctx.limit).map(|(_, i)| i).collect()
    }
}

/// Successive halving over surrogate regions: the CART surrogate's top
/// splits (depth ≤ [`REGION_DEPTH`]) partition the grid into regions;
/// regions are ranked by their best *observed* improvement (predicted mean
/// where nothing has been measured yet), the bottom half is dropped each
/// round, and proposals round-robin across the survivors in opening-book
/// order — breadth first, then depth where it pays.
pub struct Halving;

impl Planner for Halving {
    fn name(&self) -> &'static str {
        "halving"
    }

    fn plan(&mut self, ctx: &PlanContext) -> Vec<usize> {
        let model = match ctx.surrogate() {
            Some(m) => m,
            None => return ctx.stratified_opening(ctx.limit),
        };
        let tree = model.as_tree().expect("Cart surrogate is a tree");

        // Partition the unproposed grid by region, and find each region's
        // best observed target.  Within a region, members are ordered by
        // the surrogate's predicted value (desc; ties fall back to the
        // opening book) — the budget each surviving region receives goes
        // to its most promising configurations first.
        let mut members: BTreeMap<usize, Vec<(f64, usize, usize)>> = BTreeMap::new();
        for (book_rank, i) in ctx.unproposed_opening().enumerate() {
            let value = model.predict(&ctx.grid.rows[i]).value;
            members
                .entry(region_of(tree, &ctx.grid.rows[i]))
                .or_default()
                .push((value, book_rank, i));
        }
        for m in members.values_mut() {
            m.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        }
        let mut best_seen: BTreeMap<usize, f64> = BTreeMap::new();
        for o in ctx.history {
            let r = region_of(tree, &o.row);
            let e = best_seen.entry(r).or_insert(f64::NEG_INFINITY);
            if o.target > *e {
                *e = o.target;
            }
        }

        // Rank regions: observed best wins, surrogate mean fills in for
        // never-measured regions; ties break on the region's node index.
        let mut regions: Vec<(f64, usize)> = members
            .keys()
            .map(|&r| {
                let score = best_seen.get(&r).copied().unwrap_or_else(|| tree.nodes[r].value());
                (score, r)
            })
            .collect();
        regions.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let keep = (regions.len() >> ctx.round.saturating_sub(1).min(63)).max(1);
        regions.truncate(keep);

        // Round-robin across the surviving regions.
        let mut cursors: Vec<std::slice::Iter<(f64, usize, usize)>> =
            regions.iter().map(|(_, r)| members[r].iter()).collect();
        let mut batch = Vec::with_capacity(ctx.limit);
        'fill: loop {
            let mut exhausted = true;
            for c in &mut cursors {
                if let Some(&(_, _, i)) = c.next() {
                    exhausted = false;
                    batch.push(i);
                    if batch.len() == ctx.limit {
                        break 'fill;
                    }
                }
            }
            if exhausted {
                break;
            }
        }
        batch
    }
}

/// The surrogate-tree node reached from the root in at most
/// [`REGION_DEPTH`] routing steps — the region a row belongs to.
fn region_of(tree: &Tree, row: &[f64]) -> usize {
    let mut at = Tree::ROOT;
    for _ in 0..REGION_DEPTH {
        match &tree.nodes[at] {
            Node::Leaf { .. } => break,
            Node::Internal { feature, rule, left, right, .. } => {
                at = if rule.goes_left(row[*feature]) { *left } else { *right };
            }
        }
    }
    at
}

/// Spread of all known targets (exploration scale); 1.0 when degenerate.
fn target_spread(ctx: &PlanContext) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for o in ctx.priors.iter().chain(ctx.history) {
        lo = lo.min(o.target);
        hi = hi.max(o.target);
    }
    let spread = hi - lo;
    if spread.is_finite() && spread > 0.0 {
        spread
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic::Trainer;

    fn grid() -> Grid {
        let t = Trainer::with_paper_ranking(7);
        Grid::new(&t.sample_points(4))
    }

    fn observe(grid: &Grid, ix: &[usize]) -> Vec<Observation> {
        ix.iter()
            .map(|&i| Observation {
                index: Some(i),
                row: grid.rows[i].clone(),
                // Synthetic but deterministic target.
                target: 1.0 + (i % 7) as f64 * 0.3,
            })
            .collect()
    }

    fn ctx_of<'a>(
        grid: &'a Grid,
        history: &'a [Observation],
        proposed: &'a BTreeSet<usize>,
        round: usize,
    ) -> PlanContext<'a> {
        PlanContext {
            fingerprint: 0xfeed_f00d,
            round,
            limit: 6,
            grid,
            history,
            priors: &[],
            proposed,
        }
    }

    #[test]
    fn grid_opening_starts_near_the_default_point() {
        let g = grid();
        assert!(!g.is_empty());
        // The first opening entries perturb no more dimensions than later
        // ones (non-decreasing perturbation count).
        let d = SpacePoint::default_point().normalized();
        let s0 = encode(&d.system, &d.app);
        let diffs: Vec<usize> = g
            .opening
            .iter()
            .map(|&i| {
                g.rows[i].iter().zip(&s0).filter(|(a, b)| a.to_bits() != b.to_bits()).count()
            })
            .collect();
        assert!(diffs.windows(2).all(|w| w[0] <= w[1]), "{diffs:?}");
    }

    #[test]
    fn every_planner_is_deterministic_and_respects_the_limit() {
        let g = grid();
        let history = observe(&g, &[0, 3, 9]);
        let proposed: BTreeSet<usize> = [0usize, 3, 9].into_iter().collect();
        for strategy in Strategy::ALL {
            let a = strategy.instantiate().plan(&ctx_of(&g, &history, &proposed, 2));
            let b = strategy.instantiate().plan(&ctx_of(&g, &history, &proposed, 2));
            assert_eq!(a, b, "{} must replan identically", strategy.name());
            assert!(a.len() <= 6, "{} overflowed the limit", strategy.name());
            assert!(!a.is_empty(), "{} proposed nothing", strategy.name());
            for &i in &a {
                assert!(i < g.len());
                assert!(!proposed.contains(&i), "{} re-proposed {i}", strategy.name());
            }
            let set: BTreeSet<usize> = a.iter().copied().collect();
            assert_eq!(set.len(), a.len(), "{} proposed duplicates", strategy.name());
        }
    }

    #[test]
    fn plans_change_with_the_round_seed_only_via_exploration() {
        // The bandit's jitter stream is (fingerprint, round)-derived; two
        // different fingerprints give different random strawman orders.
        let g = grid();
        let proposed = BTreeSet::new();
        let mk = |fp: u64| PlanContext {
            fingerprint: fp,
            round: 0,
            limit: 8,
            grid: &g,
            history: &[],
            priors: &[],
            proposed: &proposed,
        };
        let a = RandomOrder.plan(&mk(1));
        let b = RandomOrder.plan(&mk(2));
        assert_ne!(a, b, "different campaigns must shuffle differently");
    }

    #[test]
    fn cold_planners_open_with_the_book() {
        let g = grid();
        let proposed = BTreeSet::new();
        let ctx = ctx_of(&g, &[], &proposed, 0);
        // The non-adaptive baseline reads the book front to back.
        let prefix: Vec<usize> = g.opening.iter().copied().take(6).collect();
        assert_eq!(PbRanked.plan(&ctx), prefix);
        // The adaptive planners stratify their cold start across the whole
        // book — head included — for surrogate coverage.
        let strat: Vec<usize> = (0..6).map(|k| g.opening[k * g.opening.len() / 6]).collect();
        assert_eq!(Bandit.plan(&ctx), strat);
        assert_eq!(Halving.plan(&ctx), strat);
        assert_eq!(strat[0], g.opening[0], "the book's head is always probed");
    }

    #[test]
    fn bandit_prefers_the_best_observed_neighborhood() {
        // Feed a history where high indices score high; the surrogate
        // should steer proposals toward rows that look like them.
        let g = grid();
        let n = g.len();
        let measured: Vec<usize> = (0..n).step_by(3).collect();
        let history: Vec<Observation> = measured
            .iter()
            .map(|&i| Observation {
                index: Some(i),
                row: g.rows[i].clone(),
                target: g.rows[i][10], // reward = data size feature
            })
            .collect();
        let proposed: BTreeSet<usize> = measured.iter().copied().collect();
        let ctx = PlanContext {
            fingerprint: 42,
            round: 1,
            limit: 8,
            grid: &g,
            history: &history,
            priors: &[],
            proposed: &proposed,
        };
        let batch = Bandit.plan(&ctx);
        assert!(!batch.is_empty());
        // Proposed rows should have above-median data size (the learned
        // reward direction), at least on average.
        let mut sizes: Vec<f64> = (0..n).map(|i| g.rows[i][10]).collect();
        sizes.sort_by(f64::total_cmp);
        let median = sizes[n / 2];
        let above = batch.iter().filter(|&&i| g.rows[i][10] >= median).count();
        assert!(above * 2 >= batch.len(), "bandit ignored the reward direction");
    }

    #[test]
    fn halving_drops_regions_as_rounds_advance() {
        let g = grid();
        let history = observe(&g, &[0, 1, 2, 5, 8, 13]);
        let proposed: BTreeSet<usize> = [0usize, 1, 2, 5, 8, 13].into_iter().collect();
        let early = Halving.plan(&ctx_of(&g, &history, &proposed, 1));
        let late = Halving.plan(&ctx_of(&g, &history, &proposed, 6));
        assert!(!early.is_empty() && !late.is_empty());
        // By round 6 only one region survives: all proposals route to the
        // same surrogate region.
        let ds = {
            let mut d = Dataset::new(schema());
            for o in &history {
                d.push(o.row.clone(), o.target);
            }
            d
        };
        let model = Model::fit(&ds, ModelKind::Cart, 0xfeed_f00d);
        let tree = model.as_tree().unwrap();
        let regions: BTreeSet<usize> =
            late.iter().map(|&i| region_of(tree, &g.rows[i])).collect();
        assert_eq!(regions.len(), 1, "late rounds must focus a single region");
    }

    #[test]
    fn strategies_parse_and_name_round_trip() {
        for s in Strategy::ALL {
            let parsed: Strategy = s.name().parse().unwrap();
            assert_eq!(parsed, s);
        }
        assert!("pbranked".parse::<Strategy>().is_ok());
        assert!("ucb".parse::<Strategy>().is_ok());
        assert!("sh".parse::<Strategy>().is_ok());
        assert!("bogus".parse::<Strategy>().is_err());
    }
}
