//! Kill→resume acceptance for *adaptive* campaigns: a search killed at
//! any journal byte offset, with any strategy, batch size, and worker
//! count, must resume to a bit-identical plan and database.  The journal
//! replay reconstructs the planner's state exactly — every round sees the
//! same observations, so it proposes the same batches.

use acic::training::CollectOptions;
use acic::{Objective, Store, Trainer};
use acic_search::{run_search, Budget, SearchConfig, StopReason, Strategy};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Kill a journal at `frac` of its entry bytes: keep the 2-line header,
/// then cut the rest at an arbitrary byte offset — everything after the
/// last surviving newline becomes a torn fragment, exactly as a SIGKILL
/// mid-`write` would leave behind.
fn kill_journal_at(full: &str, frac: f64) -> String {
    let header_end = full
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .nth(1)
        .map(|(i, _)| i + 1)
        .expect("journal must have a 2-line header");
    let body = &full[header_end..];
    let keep = ((body.len() as f64) * frac) as usize;
    format!("{}{}", &full[..header_end], &body[..keep.min(body.len())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 3: any strategy, any batch size, any kill point, any
    /// worker count — the resumed plan and database are byte-identical.
    #[test]
    fn killed_search_resumes_bit_identically(
        strategy in prop::sample::select(Strategy::ALL.to_vec()),
        batch in 1usize..=5,
        budget in 6usize..=12,
        frac in 0.05f64..0.95,
        workers in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let t = Trainer::with_paper_ranking(20130917);
        let points = t.sample_points(3);
        let name = format!(
            "search-resume-{}-{batch}-{budget}-{}-{workers}.journal",
            strategy.name(),
            (frac * 1000.0) as u32
        );
        let path = tmp(&name);
        let _ = fs::remove_file(&path);

        let cfg = SearchConfig {
            journal: Some(&path),
            ..SearchConfig::new(strategy, Budget::measurements(budget).with_batch(batch), Objective::Performance)
        };
        let truth = run_search(&t, &points, &cfg).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        prop_assert!(full.lines().count() > 2, "campaign too small to interrupt");

        // Kill: overwrite the journal with a truncated prefix, then rerun
        // the identical search configuration at the chosen worker count.
        fs::write(&path, kill_journal_at(&full, frac)).unwrap();
        std::env::set_var("RAYON_NUM_THREADS", workers.to_string());
        let resumed = run_search(&t, &points, &cfg);
        std::env::remove_var("RAYON_NUM_THREADS");
        let resumed = resumed.unwrap();

        prop_assert_eq!(&resumed.plan, &truth.plan);
        prop_assert_eq!(resumed.plan.render(), truth.plan.render());
        prop_assert_eq!(resumed.collection.db.to_text(), truth.collection.db.to_text());
        prop_assert_eq!(resumed.best_index, truth.best_index);
        let _ = fs::remove_file(&path);
    }
}

#[test]
fn double_kill_double_resume_converges() {
    // Kill early, resume, kill later, resume again: still bit-identical.
    let t = Trainer::with_paper_ranking(7);
    let points = t.sample_points(3);
    let path = tmp("search-double-kill.journal");
    let _ = fs::remove_file(&path);
    let cfg = SearchConfig {
        journal: Some(&path),
        ..SearchConfig::new(
            Strategy::Bandit,
            Budget::measurements(10).with_batch(3),
            Objective::Cost,
        )
    };
    let truth = run_search(&t, &points, &cfg).unwrap();
    let full = fs::read_to_string(&path).unwrap();

    fs::write(&path, kill_journal_at(&full, 0.2)).unwrap();
    let once = run_search(&t, &points, &cfg).unwrap();
    assert_eq!(once.plan, truth.plan, "first resume diverged");

    let regrown = fs::read_to_string(&path).unwrap();
    fs::write(&path, kill_journal_at(&regrown, 0.7)).unwrap();
    let twice = run_search(&t, &points, &cfg).unwrap();
    assert_eq!(twice.plan, truth.plan, "second resume diverged");
    assert_eq!(twice.plan.render(), truth.plan.render());
    assert_eq!(twice.collection.db.to_text(), truth.collection.db.to_text());
    let _ = fs::remove_file(&path);
}

#[test]
fn resume_with_store_hits_stays_identical() {
    // Store hits are never journaled — the store itself is the durable
    // record.  A campaign that answered points from the store, killed and
    // resumed against the *same* store, must replay identically, with
    // measurement counts unchanged (hits cost no budget either way).
    let t = Trainer::with_paper_ranking(11);
    let points = t.sample_points(3);

    // Pre-measure the first few grid points into a durable store.
    let subset: Vec<usize> = (0..4.min(points.len())).collect();
    let opts = CollectOptions { subset: Some(&subset), ..Default::default() };
    let pre = t.collect_with(&points, &opts).unwrap();
    let dir = tmp("search-resume-store");
    let _ = fs::remove_dir_all(&dir);
    let mut store = Store::open(&dir).unwrap();
    store.ingest_collection(&t.campaign_id(&points), &pre).unwrap();
    let lookup = store.lookup_index();

    let path = tmp("search-resume-store.journal");
    let _ = fs::remove_file(&path);
    let cfg = SearchConfig {
        journal: Some(&path),
        lookup: Some(&lookup),
        ..SearchConfig::new(
            Strategy::PbRanked,
            Budget::measurements(5).with_batch(4),
            Objective::Performance,
        )
    };
    let truth = run_search(&t, &points, &cfg).unwrap();
    assert!(truth.plan.store_hits() > 0, "the opening book must hit the pre-measured points");
    assert_eq!(truth.plan.stop, StopReason::Budget);

    let full = fs::read_to_string(&path).unwrap();
    fs::write(&path, kill_journal_at(&full, 0.5)).unwrap();
    let resumed = run_search(&t, &points, &cfg).unwrap();
    assert_eq!(resumed.plan, truth.plan);
    assert_eq!(resumed.plan.render(), truth.plan.render());
    assert_eq!(resumed.collection.db.to_text(), truth.collection.db.to_text());
    let _ = fs::remove_file(&path);
    let _ = fs::remove_dir_all(&dir);
}
