//! Satellite 1 regression: the trainer must not re-simulate points the
//! durable store already holds.  Dedup is by the *canonical config key*
//! (a pure function of the configuration bits), so a re-campaign over the
//! same configurations in any order — even under a different campaign
//! fingerprint — is answered entirely from the store.

use acic::training::CollectOptions;
use acic::{Metrics, Store, Trainer};
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn ingested_store(name: &str, t: &Trainer, points: &[acic::space::SpacePoint]) -> Store {
    let dir = tmp(name);
    let _ = fs::remove_dir_all(&dir);
    let col = t.collect_with(points, &CollectOptions::default()).unwrap();
    let mut store = Store::open(&dir).unwrap();
    store.ingest_collection(&t.campaign_id(points), &col).unwrap();
    store
}

#[test]
fn shuffled_recampaign_does_zero_new_simulations() {
    let t = Trainer::with_paper_ranking(5);
    let points = t.sample_points(3);
    let store = ingested_store("dedup-shuffled", &t, &points);
    let lookup = store.lookup_index();
    let first = t.collect_with(&points, &CollectOptions::default()).unwrap();

    // Same configurations, reversed order: a different campaign (the
    // fingerprint covers point order), so every per-point seed changes —
    // only the canonical config key can connect it to the store.
    let shuffled: Vec<_> = points.iter().rev().cloned().collect();
    let m = Metrics::new();
    let opts = CollectOptions { lookup: Some(&lookup), metrics: Some(&m), ..Default::default() };
    let re = t.collect_with(&shuffled, &opts).unwrap();

    assert_eq!(re.report.store_hits, points.len(), "every point must be a store hit");
    assert_eq!(re.report.planned, points.len());
    assert!(re.report.is_complete());
    assert_eq!(re.report.baseline_runs, 0, "store hits must not trigger baseline runs");
    assert_eq!(re.db.collect_secs, 0.0, "zero new simulations means zero simulated time");
    assert_eq!(re.db.collect_cost_usd, 0.0);
    assert_eq!(m.counter("search.store_hits"), points.len() as u64);

    // The answered values are the original campaign's, permuted.
    let n = points.len();
    for (i, tp) in re.db.points.iter().enumerate() {
        assert_eq!(*tp, first.db.points[n - 1 - i], "point {i} must come from the store");
    }
}

#[test]
fn partial_store_answers_only_its_half() {
    let t = Trainer::with_paper_ranking(9);
    let points = t.sample_points(3);
    let half: Vec<usize> = (0..points.len() / 2).collect();
    let dir = tmp("dedup-partial");
    let _ = fs::remove_dir_all(&dir);
    let opts = CollectOptions { subset: Some(&half), ..Default::default() };
    let pre = t.collect_with(&points, &opts).unwrap();
    let mut store = Store::open(&dir).unwrap();
    store.ingest_collection(&t.campaign_id(&points), &pre).unwrap();
    let lookup = store.lookup_index();

    let opts = CollectOptions { lookup: Some(&lookup), ..Default::default() };
    let col = t.collect_with(&points, &opts).unwrap();
    assert_eq!(col.report.store_hits, half.len());
    assert!(col.report.is_complete());
    // The blended database is bit-identical to an all-simulated campaign:
    // store answers carry the same deterministic per-point bits.
    let all = t.collect_with(&points, &CollectOptions::default()).unwrap();
    assert_eq!(col.db.points, all.db.points);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_store_answers_take_precedence_deterministically() {
    // A store measured by a *different* campaign (the dims-1 grid, whose
    // point indices — and therefore per-point seeds — differ) still
    // answers by config key.  Hit points carry the store's bits verbatim;
    // misses are untouched; and the blend is deterministic.
    let t = Trainer::with_paper_ranking(13);
    let small = t.sample_points(1);
    let store = ingested_store("dedup-foreign", &t, &small);
    let lookup = store.lookup_index();

    let points = t.sample_points(3);
    let plain = t.collect_with(&points, &CollectOptions::default()).unwrap();
    let opts = CollectOptions { lookup: Some(&lookup), ..Default::default() };
    let a = t.collect_with(&points, &opts).unwrap();
    let b = t.collect_with(&points, &opts).unwrap();
    assert_eq!(a.db, b.db, "foreign-store blending must be deterministic");
    assert_eq!(a.report.store_hits, b.report.store_hits);
    assert!(a.report.is_complete());
    assert!(a.report.store_hits > 0, "the dims-1 grid lives inside the dims-3 grid");

    let mut hits = 0;
    for (i, (got, want)) in a.db.points.iter().zip(&plain.db.points).enumerate() {
        if let Some(s) = lookup.get(acic::point_key(&points[i])) {
            hits += 1;
            assert_eq!(*got, s.point, "hit {i} must come from the store");
        } else {
            assert_eq!(got, want, "miss {i} must be untouched");
        }
    }
    assert_eq!(hits, a.report.store_hits);
}
