//! Property-based tests for the flow-level engine: conservation, capacity,
//! monotonicity, and determinism invariants that must hold for *any* flow
//! population, not just the hand-picked unit-test cases.

use acic_cloudsim::engine::Simulation;
use acic_cloudsim::flow::FlowSpec;
use proptest::prelude::*;

/// A randomly generated scenario: `n_res` resources and flows that each
/// traverse a nonempty random subset of them.
#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    flows: Vec<(f64, Vec<usize>, f64)>, // (bytes, path, release)
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let caps = prop::collection::vec(10.0f64..1e4, 1..6);
    caps.prop_flat_map(|capacities| {
        let n_res = capacities.len();
        let flow = (
            1.0f64..1e5,
            prop::collection::btree_set(0..n_res, 1..=n_res.min(3)),
            0.0f64..50.0,
        )
            .prop_map(|(b, path, rel)| (b, path.into_iter().collect::<Vec<_>>(), rel));
        prop::collection::vec(flow, 1..20).prop_map(move |flows| Scenario {
            capacities: capacities.clone(),
            flows,
        })
    })
}

fn build(s: &Scenario) -> (Simulation, Vec<acic_cloudsim::FlowId>) {
    let mut sim = Simulation::new();
    let rids: Vec<_> = s
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
        .collect();
    let fids = s
        .flows
        .iter()
        .map(|(bytes, path, rel)| {
            sim.add_flow(
                FlowSpec::new(*bytes)
                    .through_all(path.iter().map(|&p| rids[p]))
                    .released_at(*rel),
            )
        })
        .collect();
    (sim, fids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every flow finishes, and no earlier than its ideal (uncontended,
    /// bottleneck-rate) completion time.
    #[test]
    fn all_flows_finish_no_faster_than_bottleneck(s in scenario_strategy()) {
        let (sim, fids) = build(&s);
        let rep = sim.run().unwrap();
        for (i, f) in fids.iter().enumerate() {
            let (bytes, path, rel) = &s.flows[i];
            let t = rep.finish_time(*f).expect("flow must finish");
            let min_cap = path
                .iter()
                .map(|&p| s.capacities[p])
                .fold(f64::INFINITY, f64::min);
            let ideal = rel + bytes / min_cap;
            prop_assert!(t >= ideal - 1e-6 * ideal.max(1.0),
                "flow {i} finished at {t}, before ideal {ideal}");
        }
    }

    /// Conservation: bytes served by each resource equal the sum of the
    /// sizes of the flows that traverse it.
    #[test]
    fn served_bytes_are_conserved(s in scenario_strategy()) {
        let (sim, _) = build(&s);
        let rep = sim.run().unwrap();
        for (ri, _) in s.capacities.iter().enumerate() {
            let expected: f64 = s
                .flows
                .iter()
                .filter(|(_, path, _)| path.contains(&ri))
                .map(|(b, _, _)| *b)
                .sum();
            let got = rep.resource_served(acic_cloudsim::ResourceId::from_index(ri));
            prop_assert!((got - expected).abs() <= 1e-6 * expected.max(1.0),
                "resource {ri}: served {got}, expected {expected}");
        }
    }

    /// The run is deterministic: building and running the same scenario
    /// twice yields identical finish times.
    #[test]
    fn runs_are_deterministic(s in scenario_strategy()) {
        let (sim1, f1) = build(&s);
        let (sim2, f2) = build(&s);
        let r1 = sim1.run().unwrap();
        let r2 = sim2.run().unwrap();
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert_eq!(r1.finish_time(*a), r2.finish_time(*b));
        }
    }

    /// Capacity bound: a resource can serve at most `capacity × makespan`
    /// bytes, so the makespan is bounded below by every resource's total
    /// demand divided by its capacity.  (Note: per-flow monotonicity under
    /// extra load does NOT hold for max-min fairness — adding a flow on one
    /// link can throttle a multi-hop flow early and thereby *speed up* a
    /// third flow sharing its other link — so we assert this aggregate
    /// bound instead.)
    #[test]
    fn makespan_respects_every_resource_capacity(s in scenario_strategy()) {
        let (sim, _) = build(&s);
        let rep = sim.run().unwrap();
        for (ri, &cap) in s.capacities.iter().enumerate() {
            let demand: f64 = s
                .flows
                .iter()
                .filter(|(_, path, _)| path.contains(&ri))
                .map(|(b, _, _)| *b)
                .sum();
            let bound = demand / cap;
            prop_assert!(rep.makespan() >= bound - 1e-6 * bound.max(1.0),
                "makespan {} below capacity bound {} of resource {}",
                rep.makespan(), bound, ri);
        }
    }

    /// Makespan is the max of the finish times.
    #[test]
    fn makespan_is_last_finish(s in scenario_strategy()) {
        let (sim, fids) = build(&s);
        let rep = sim.run().unwrap();
        let max = fids
            .iter()
            .filter_map(|f| rep.finish_time(*f))
            .fold(0.0f64, f64::max);
        prop_assert!((rep.makespan() - max).abs() < 1e-9);
    }
}
