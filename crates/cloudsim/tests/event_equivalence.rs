//! Event-driven vs reference engine equivalence on randomized topologies.
//!
//! The gating policy (DESIGN.md §14): finish times, makespan, and event
//! counts must match **bit for bit**; per-resource served bytes may differ
//! by ≤1e-9 relative because the event core accumulates one
//! `moved × members` add per group where the reference engine performs
//! `members` separate adds (float re-association).
//!
//! Releases, latencies, and byte counts are drawn from small discrete
//! grids on purpose: exact activation-time ties and duplicated flows are
//! the cases where the event core's grouping and heap tie-breaking have to
//! reproduce the reference trajectory, and a continuous distribution would
//! almost never generate them.

use acic_cloudsim::{FlowSpec, ResourceId, SimEngine, Simulation};
use proptest::prelude::*;

const RELEASES: [f64; 4] = [0.0, 0.5, 1.25, 2.0];
const LATENCIES: [f64; 3] = [0.0, 0.05, 0.5];

type FlowDraw = (u32, Vec<u8>, u8, u8, u8);

fn build(caps: &[f64], flows: &[FlowDraw], engine: SimEngine) -> Simulation {
    let mut sim = Simulation::new().with_engine(engine);
    let ids: Vec<ResourceId> =
        caps.iter().enumerate().map(|(i, &c)| sim.add_resource(format!("r{i}"), c)).collect();
    let mut n = 0usize;
    for (bytes_step, path, release_pick, latency_pick, clones) in flows {
        for _ in 0..*clones {
            let mut f = FlowSpec::new(f64::from(*bytes_step) * 7.5)
                .released_at(RELEASES[*release_pick as usize])
                .with_latency(LATENCIES[*latency_pick as usize])
                .labeled(format!("flow{n}"));
            for &p in path {
                f = f.through(ids[p as usize % ids.len()]);
            }
            sim.add_flow(f);
            n += 1;
        }
    }
    sim
}

fn assert_equivalent(caps: &[f64], flows: &[FlowDraw]) -> Result<(), TestCaseError> {
    let ref_rep = build(caps, flows, SimEngine::Reference).run().unwrap();
    let evt_rep = build(caps, flows, SimEngine::Event).run().unwrap();

    prop_assert_eq!(
        ref_rep.makespan().to_bits(),
        evt_rep.makespan().to_bits(),
        "makespan diverges: {} vs {}",
        ref_rep.makespan(),
        evt_rep.makespan()
    );
    prop_assert_eq!(ref_rep.events(), evt_rep.events(), "event counts diverge");

    // Per-flow finish times bit-identical and labels round-tripped in flow
    // order (the event core reorders internally; the report must not).
    let reference: Vec<(u64, Option<String>)> =
        ref_rep.flows().map(|(_, t, l)| (t.to_bits(), l.map(str::to_owned))).collect();
    let event: Vec<(u64, Option<String>)> =
        evt_rep.flows().map(|(_, t, l)| (t.to_bits(), l.map(str::to_owned))).collect();
    prop_assert_eq!(reference, event);

    for r in 0..caps.len() {
        let a = ref_rep.resource_served(ResourceId::from_index(r));
        let b = evt_rep.resource_served(ResourceId::from_index(r));
        prop_assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "resource {} served bytes diverge: {} vs {}",
            r,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// General randomized topologies: mixed paths, staggered activations,
    /// duplicated flows.
    #[test]
    fn event_core_matches_reference(
        caps in prop::collection::vec(0.5f64..2000.0, 1usize..6),
        flows in prop::collection::vec(
            (1u32..60, prop::collection::vec(0u8..8, 1usize..4), 0u8..4, 0u8..3, 1u8..4),
            1usize..40,
        ),
    ) {
        assert_equivalent(&caps, &flows)?;
    }

    /// Clone-heavy workloads (the campaign shape): a handful of distinct
    /// flow shapes, each duplicated many times, so the event core runs with
    /// far fewer groups than flows.
    #[test]
    fn grouped_clones_match_reference(
        caps in prop::collection::vec(10.0f64..500.0, 1usize..4),
        shapes in prop::collection::vec(
            (1u32..20, prop::collection::vec(0u8..4, 1usize..3), 0u8..4, 0u8..1, 8u8..32),
            1usize..6,
        ),
    ) {
        assert_equivalent(&caps, &shapes)?;
    }

    /// Pure staggered-activation stress: every flow shares one link, so
    /// correctness hinges entirely on activation ordering and the idle-gap
    /// jump logic.
    #[test]
    fn staggered_single_link_matches_reference(
        flows in prop::collection::vec((1u32..60, 0u8..4, 0u8..3, 1u8..3), 1usize..30),
    ) {
        let caps = [100.0f64];
        let drawn: Vec<FlowDraw> = flows
            .into_iter()
            .map(|(b, rp, lp, c)| (b, vec![0u8], rp, lp, c))
            .collect();
        assert_equivalent(&caps, &drawn)?;
    }
}
