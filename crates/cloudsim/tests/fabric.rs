//! Integration tests of the two-tier (oversubscribed) fabric model.

use acic_cloudsim::cluster::{Cluster, ClusterSpec, Placement};
use acic_cloudsim::device::DeviceKind;
use acic_cloudsim::engine::Simulation;
use acic_cloudsim::flow::FlowSpec;
use acic_cloudsim::instance::InstanceType;
use acic_cloudsim::network::FabricSpec;
use acic_cloudsim::raid::Raid0;
use acic_cloudsim::rng::SplitMix64;
use acic_cloudsim::units::gib;

fn build(fabric: FabricSpec, compute: usize) -> (Simulation, Cluster) {
    let spec = ClusterSpec {
        instance_type: InstanceType::Cc2_8xlarge,
        compute_instances: compute,
        io_servers: 1,
        placement: Placement::Dedicated,
        storage: Raid0::new(DeviceKind::Ephemeral, 1),
    };
    let mut sim = Simulation::new();
    let mut rng = SplitMix64::new(1);
    let c = Cluster::build_with_fabric(spec, fabric, &mut sim, &mut rng).unwrap();
    (sim, c)
}

#[test]
fn flat_fabric_adds_no_uplinks() {
    let (_, c) = build(FabricSpec::FLAT, 8);
    assert!(c.rack_uplinks.is_empty());
    let mut path = Vec::new();
    c.net_path(0, 7, &mut path);
    assert_eq!(path.len(), 2, "tx + rx only");
}

#[test]
fn tiered_fabric_routes_interrack_through_uplinks() {
    let (_, c) = build(FabricSpec::oversubscribed(4, 4.0), 8);
    assert_eq!(c.rack_uplinks.len(), 3, "8 compute + 1 server node = 3 racks of 4");
    let mut intra = Vec::new();
    c.net_path(0, 3, &mut intra); // same rack
    assert_eq!(intra.len(), 2);
    let mut inter = Vec::new();
    c.net_path(0, 4, &mut inter); // rack 0 -> rack 1
    assert_eq!(inter.len(), 4, "tx + up + down + rx");
}

#[test]
fn oversubscription_throttles_cross_rack_aggregate() {
    // 4 nodes per rack, 4:1 oversubscription: the uplink carries one NIC's
    // worth.  Four concurrent cross-rack flows therefore take ~4x longer
    // than on a flat fabric.
    let bytes = gib(2.0);
    let measure = |fabric: FabricSpec| {
        let (mut sim, c) = build(fabric, 8);
        let mut ids = Vec::new();
        for i in 0..4usize {
            let mut path = Vec::new();
            c.net_path(i, 4 + i, &mut path);
            ids.push(sim.add_flow(FlowSpec::new(bytes).through_all(path)));
        }
        sim.run().unwrap().makespan()
    };
    let flat = measure(FabricSpec::FLAT);
    let tiered = measure(FabricSpec::oversubscribed(4, 4.0));
    let ratio = tiered / flat;
    assert!(
        (3.5..=4.5).contains(&ratio),
        "4:1 oversubscription should cost ~4x on saturated cross-rack traffic, got {ratio:.2}"
    );
}

#[test]
fn intra_rack_traffic_is_unaffected_by_oversubscription() {
    let bytes = gib(1.0);
    let measure = |fabric: FabricSpec| {
        let (mut sim, c) = build(fabric, 8);
        let mut path = Vec::new();
        c.net_path(0, 1, &mut path);
        let f = sim.add_flow(FlowSpec::new(bytes).through_all(path));
        let rep = sim.run().unwrap();
        rep.finish_time(f).unwrap()
    };
    let flat = measure(FabricSpec::FLAT);
    let tiered = measure(FabricSpec::oversubscribed(4, 8.0));
    assert!((flat - tiered).abs() < 1e-9, "same-rack flows never see the uplink");
}

#[test]
fn fabric_spec_validations() {
    assert!(!FabricSpec::FLAT.is_tiered());
    let f = FabricSpec::oversubscribed(4, 2.0);
    assert!(f.is_tiered());
    assert_eq!(f.rack_of(0), 0);
    assert_eq!(f.rack_of(3), 0);
    assert_eq!(f.rack_of(4), 1);
    let nic = InstanceType::Cc2_8xlarge.nic_bps();
    assert!((f.uplink_bps(nic) - 4.0 * nic / 2.0).abs() < 1e-6);
}

#[test]
#[should_panic(expected = "ratio")]
fn undersubscription_rejected() {
    let _ = FabricSpec::oversubscribed(4, 0.5);
}
