//! Software RAID-0 aggregation of cloud disk devices.
//!
//! Cloud HPC users "can easily scale up the aggregate I/O capacity and
//! bandwidth, e.g., by aggregating multiple disks into a software RAID 0
//! partition" (paper §3.1).  The ACIC baseline configuration itself is a
//! RAID-0 of two EBS volumes under NFS.

use crate::device::{DeviceKind, DeviceProfile};
use crate::rng::SplitMix64;

/// Striping efficiency of Linux `md` RAID-0: aggregate streaming bandwidth
/// falls slightly short of the device sum because stripe-boundary splits and
/// request re-queuing cost a few percent.
const RAID0_EFFICIENCY: f64 = 0.95;

/// An aggregated logical block device: `width` devices of one kind in RAID-0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Raid0 {
    /// Device kind of every member.
    pub kind: DeviceKind,
    /// Number of member devices (1 = plain device, no striping overhead).
    pub width: usize,
}

impl Raid0 {
    /// A RAID-0 array of `width` devices of `kind`.
    pub fn new(kind: DeviceKind, width: usize) -> Self {
        assert!(width >= 1, "RAID-0 needs at least one member device");
        Self { kind, width }
    }

    /// The aggregate performance profile, with per-run multi-tenant jitter
    /// sampled independently per member device (a slow member drags the
    /// whole stripe, hence the `min` over member draws scaled by width).
    pub fn effective_profile(&self, rng: &mut SplitMix64) -> DeviceProfile {
        let base = self.kind.profile();
        // RAID-0 throughput is width × the *slowest* member: striping waits
        // for every member each full stripe pass.
        let mut worst = f64::INFINITY;
        for _ in 0..self.width {
            worst = worst.min(rng.jitter(base.jitter_sigma));
        }
        let eff = if self.width == 1 { 1.0 } else { RAID0_EFFICIENCY };
        let scale = self.width as f64 * eff * worst;
        DeviceProfile {
            kind: base.kind,
            seq_read_bps: base.seq_read_bps * scale,
            seq_write_bps: base.seq_write_bps * scale,
            // Per-op latency does not improve with striping; large requests
            // spanning all members pay the max member latency (~ the base).
            per_op_latency: base.per_op_latency,
            jitter_sigma: base.jitter_sigma,
            via_nic: base.via_nic,
            random_efficiency: base.random_efficiency,
        }
    }

    /// Deterministic (jitter-free) aggregate profile; used by analytic code
    /// and tests that need exact expectations.
    pub fn nominal_profile(&self) -> DeviceProfile {
        let base = self.kind.profile();
        let eff = if self.width == 1 { 1.0 } else { RAID0_EFFICIENCY };
        let scale = self.width as f64 * eff;
        DeviceProfile {
            kind: base.kind,
            seq_read_bps: base.seq_read_bps * scale,
            seq_write_bps: base.seq_write_bps * scale,
            per_op_latency: base.per_op_latency,
            jitter_sigma: base.jitter_sigma,
            via_nic: base.via_nic,
            random_efficiency: base.random_efficiency,
        }
    }
}

impl std::fmt::Display for Raid0 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.width == 1 {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "{}x{} raid0", self.width, self.kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_width_panics() {
        let _ = Raid0::new(DeviceKind::Ephemeral, 0);
    }

    #[test]
    fn width_one_is_the_plain_device() {
        let r = Raid0::new(DeviceKind::Ephemeral, 1);
        let p = r.nominal_profile();
        let base = DeviceKind::Ephemeral.profile();
        assert_eq!(p.seq_write_bps, base.seq_write_bps);
        assert_eq!(p.seq_read_bps, base.seq_read_bps);
    }

    #[test]
    fn striping_scales_bandwidth_with_efficiency_loss() {
        let r = Raid0::new(DeviceKind::Ephemeral, 4);
        let p = r.nominal_profile();
        let base = DeviceKind::Ephemeral.profile();
        assert!(p.seq_write_bps > 3.5 * base.seq_write_bps);
        assert!(p.seq_write_bps < 4.0 * base.seq_write_bps);
    }

    #[test]
    fn latency_does_not_improve_with_width() {
        let base = DeviceKind::Ebs.profile();
        let p = Raid0::new(DeviceKind::Ebs, 4).nominal_profile();
        assert_eq!(p.per_op_latency, base.per_op_latency);
    }

    #[test]
    fn jittered_profile_stays_near_nominal() {
        let r = Raid0::new(DeviceKind::Ephemeral, 2);
        let nominal = r.nominal_profile().seq_write_bps;
        let mut rng = SplitMix64::new(99);
        for _ in 0..100 {
            let p = r.effective_profile(&mut rng);
            let ratio = p.seq_write_bps / nominal;
            assert!((0.25..=4.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn via_nic_propagates_from_device_kind() {
        assert!(Raid0::new(DeviceKind::Ebs, 2).nominal_profile().via_nic);
        assert!(!Raid0::new(DeviceKind::Ephemeral, 2).nominal_profile().via_nic);
    }

    #[test]
    fn display_names_are_compact() {
        assert_eq!(Raid0::new(DeviceKind::Ebs, 1).to_string(), "EBS");
        assert_eq!(Raid0::new(DeviceKind::Ephemeral, 4).to_string(), "4xeph raid0");
    }
}
