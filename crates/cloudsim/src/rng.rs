//! Deterministic pseudo-random numbers for the simulator.
//!
//! Multi-tenant clouds deliver "inferior and sometimes highly variable
//! performance" (paper §1); we reproduce that variability with a small,
//! seedable generator so that every experiment in the repository is
//! bit-reproducible.  SplitMix64 is used because it is tiny, passes BigCrush
//! when used as a stream, and makes per-run seed derivation trivial.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent child generator; used to give each simulated
    /// run in a sweep its own stream (`derive(experiment_id, run_index)`).
    pub fn derive(&self, salt: u64) -> Self {
        let mut child = Self::new(self.state ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
        child.next_u64();
        child
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small `n` used here (config counts, permutation indices).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box-Muller (one value per call; simple and
    /// deterministic, speed is irrelevant at our call rates).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative jitter factor: lognormal with median 1 and the given
    /// sigma, clamped to `[0.25, 4.0]` so a tail draw cannot produce absurd
    /// device speeds.  `sigma = 0` returns exactly 1.0.
    pub fn jitter(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        (self.std_normal() * sigma).exp().clamp(0.25, 4.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = SplitMix64::new(7);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.uniform(10.0, 20.0);
            assert!((10.0..20.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn std_normal_has_roughly_zero_mean_unit_var() {
        let mut r = SplitMix64::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn jitter_zero_sigma_is_identity() {
        let mut r = SplitMix64::new(17);
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn jitter_is_clamped_and_centred() {
        let mut r = SplitMix64::new(19);
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|_| r.jitter(0.2)).collect();
        assert!(xs.iter().all(|&x| (0.25..=4.0).contains(&x)));
        // Median of a lognormal with mu=0 is 1.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[n / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(23);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
