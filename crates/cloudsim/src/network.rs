//! Per-node network endpoints and routing helpers.
//!
//! The CCI fabric is 10 GbE with full bisection bandwidth (the paper's
//! testbed has at most 16 instances on a non-blocking segment), so the only
//! network bottlenecks are the per-instance NICs.  Each node gets a
//! transmit resource, a receive resource (full duplex), and a memory-bus
//! resource for loopback traffic (a part-time I/O server talking to the
//! clients co-located on the same instance never touches the wire — the
//! locality effect behind §5.6 observation 1).

use crate::engine::Simulation;
use crate::instance::InstanceType;
use crate::resource::ResourceId;

/// Network attachment of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeNet {
    /// NIC transmit direction.
    pub tx: ResourceId,
    /// NIC receive direction.
    pub rx: ResourceId,
    /// Intra-node memory bus (loopback).
    pub bus: ResourceId,
}

impl NodeNet {
    /// Create the three per-node resources inside `sim`.  Names are
    /// formatted into recycled strings so pooled campaign builds stay
    /// allocation-free.
    pub fn create(sim: &mut Simulation, node: usize, itype: InstanceType) -> Self {
        let tx = sim.add_resource_fmt(format_args!("node{node}.nic.tx"), itype.nic_bps());
        let rx = sim.add_resource_fmt(format_args!("node{node}.nic.rx"), itype.nic_bps());
        let bus = sim.add_resource_fmt(format_args!("node{node}.bus"), itype.bus_bps());
        Self { tx, rx, bus }
    }
}

/// Append the resource path for moving data from node `from` to node `to`
/// onto `out`.  Same-node traffic uses the memory bus only.
pub fn route(nets: &[NodeNet], from: usize, to: usize, out: &mut Vec<ResourceId>) {
    if from == to {
        out.push(nets[from].bus);
    } else {
        out.push(nets[from].tx);
        out.push(nets[to].rx);
    }
}

/// Two-tier fabric description.  The paper's platform interconnects CCIs
/// "with commodity networks instead of dedicated high-speed
/// interconnection" (§1); commodity fabrics of the era were oversubscribed
/// at the rack uplink.  The default is the flat full-bisection segment the
/// evaluation testbed enjoyed (≤16 instances on one switch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricSpec {
    /// Nodes per rack switch; 0 disables the rack tier (full bisection).
    pub rack_size: usize,
    /// Uplink oversubscription: the rack uplink carries
    /// `rack_size × nic_bps / oversubscription` in each direction.
    pub oversubscription: f64,
}

impl FabricSpec {
    /// Flat full-bisection fabric (the default testbed).
    pub const FLAT: FabricSpec = FabricSpec { rack_size: 0, oversubscription: 1.0 };

    /// A `rack_size`-node rack with `oversubscription`:1 uplinks.
    pub fn oversubscribed(rack_size: usize, oversubscription: f64) -> Self {
        assert!(rack_size >= 2, "a rack needs at least two nodes");
        assert!(oversubscription >= 1.0, "oversubscription is a ratio ≥ 1");
        Self { rack_size, oversubscription }
    }

    /// Is the rack tier active?
    pub fn is_tiered(&self) -> bool {
        self.rack_size >= 2 && self.oversubscription > 0.0
    }

    /// The rack a node belongs to.
    pub fn rack_of(&self, node: usize) -> usize {
        if self.is_tiered() {
            node / self.rack_size
        } else {
            0
        }
    }

    /// Per-direction uplink capacity given a NIC speed.
    pub fn uplink_bps(&self, nic_bps: f64) -> f64 {
        self.rack_size as f64 * nic_bps / self.oversubscription
    }
}

impl Default for FabricSpec {
    fn default() -> Self {
        Self::FLAT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;

    #[test]
    fn create_allocates_three_distinct_resources() {
        let mut sim = Simulation::new();
        let net = NodeNet::create(&mut sim, 0, InstanceType::Cc2_8xlarge);
        assert_ne!(net.tx, net.rx);
        assert_ne!(net.tx, net.bus);
        assert_eq!(sim.resource_count(), 3);
    }

    #[test]
    fn remote_route_uses_tx_and_rx() {
        let mut sim = Simulation::new();
        let a = NodeNet::create(&mut sim, 0, InstanceType::Cc2_8xlarge);
        let b = NodeNet::create(&mut sim, 1, InstanceType::Cc2_8xlarge);
        let mut path = Vec::new();
        route(&[a, b], 0, 1, &mut path);
        assert_eq!(path, vec![a.tx, b.rx]);
    }

    #[test]
    fn loopback_route_uses_bus_only() {
        let mut sim = Simulation::new();
        let a = NodeNet::create(&mut sim, 0, InstanceType::Cc2_8xlarge);
        let mut path = Vec::new();
        route(&[a], 0, 0, &mut path);
        assert_eq!(path, vec![a.bus]);
    }

    #[test]
    fn loopback_is_faster_than_the_wire() {
        // A same-node transfer must beat the identical remote transfer.
        let bytes = 2.0e9;
        let mut sim = Simulation::new();
        let a = NodeNet::create(&mut sim, 0, InstanceType::Cc2_8xlarge);
        let b = NodeNet::create(&mut sim, 1, InstanceType::Cc2_8xlarge);
        let nets = [a, b];
        let mut local = Vec::new();
        route(&nets, 0, 0, &mut local);
        let mut remote = Vec::new();
        route(&nets, 0, 1, &mut remote);
        let lf = sim.add_flow(FlowSpec::new(bytes).through_all(local));
        let rf = sim.add_flow(FlowSpec::new(bytes).through_all(remote));
        let rep = sim.run().unwrap();
        assert!(rep.finish_time(lf).unwrap() < rep.finish_time(rf).unwrap());
    }
}
