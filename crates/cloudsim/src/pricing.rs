//! Monetary cost model — the paper's equation (1) plus EC2 billing detail.
//!
//! ```text
//! cost = execution time × num_instances × unit price          (eq. 1)
//! ```
//!
//! The paper notes that EC2 actually bills at hourly granularity, which is
//! what makes "residual time" piggy-back training runs free (§2); both the
//! linear eq. (1) cost (used in all evaluation figures) and the hour-rounded
//! bill are provided.

use crate::instance::InstanceType;
use crate::units::HOUR;

/// Unit prices used throughout the reproduction (us-east-1, 2012 USD).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceSheet {
    /// On-demand price of `cc1.4xlarge` per hour.
    pub cc1_hourly: f64,
    /// On-demand price of `cc2.8xlarge` per hour.
    pub cc2_hourly: f64,
    /// EBS standard volume price per GB-month.
    pub ebs_gb_month: f64,
    /// EBS price per million I/O requests.
    pub ebs_million_ios: f64,
}

impl Default for PriceSheet {
    fn default() -> Self {
        Self {
            cc1_hourly: InstanceType::Cc1_4xlarge.hourly_price(),
            cc2_hourly: InstanceType::Cc2_8xlarge.hourly_price(),
            ebs_gb_month: 0.10,
            ebs_million_ios: 0.10,
        }
    }
}

impl PriceSheet {
    /// Hourly price of an instance type.
    pub fn hourly(&self, t: InstanceType) -> f64 {
        match t {
            InstanceType::Cc1_4xlarge => self.cc1_hourly,
            InstanceType::Cc2_8xlarge => self.cc2_hourly,
        }
    }
}

/// Cost calculator for one execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    /// Prices in effect.
    pub prices: PriceSheet,
}

impl CostModel {
    /// Equation (1): linear-in-time cost of running `instances` instances of
    /// `itype` for `secs` seconds.
    pub fn linear_cost(&self, secs: f64, instances: usize, itype: InstanceType) -> f64 {
        secs / HOUR * instances as f64 * self.prices.hourly(itype)
    }

    /// What EC2 would actually bill: each instance-hour started is charged
    /// in full.
    pub fn hourly_bill(&self, secs: f64, instances: usize, itype: InstanceType) -> f64 {
        let hours = (secs / HOUR).ceil().max(1.0);
        hours * instances as f64 * self.prices.hourly(itype)
    }

    /// Residual seconds left in the already-paid hour after a run of `secs`;
    /// this is the free window the paper suggests for piggy-backed IOR
    /// training runs (§2).
    pub fn residual_secs(&self, secs: f64) -> f64 {
        let frac = secs % HOUR;
        if frac == 0.0 && secs > 0.0 {
            0.0
        } else {
            HOUR - frac
        }
    }

    /// EBS volume rental for `gb` GB over `secs` seconds (pro-rated from the
    /// monthly price) plus `ios` I/O requests.
    pub fn ebs_cost(&self, gb: f64, secs: f64, ios: f64) -> f64 {
        const MONTH: f64 = 30.0 * 24.0 * HOUR;
        gb * self.prices.ebs_gb_month * (secs / MONTH) + ios / 1.0e6 * self.prices.ebs_million_ios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_linear_cost_matches_hand_computation() {
        let m = CostModel::default();
        // 16 cc2 instances for 150 s: 150/3600 * 16 * 2.40
        let c = m.linear_cost(150.0, 16, InstanceType::Cc2_8xlarge);
        assert!((c - 150.0 / 3600.0 * 16.0 * 2.40).abs() < 1e-12);
    }

    #[test]
    fn hourly_bill_rounds_up() {
        let m = CostModel::default();
        let one_hour = m.hourly_bill(1.0, 1, InstanceType::Cc1_4xlarge);
        assert_eq!(one_hour, 1.30);
        let two_hours = m.hourly_bill(3601.0, 1, InstanceType::Cc1_4xlarge);
        assert_eq!(two_hours, 2.60);
    }

    #[test]
    fn residual_time_is_the_rest_of_the_hour() {
        let m = CostModel::default();
        assert!((m.residual_secs(150.0) - 3450.0).abs() < 1e-9);
        assert_eq!(m.residual_secs(3600.0), 0.0);
    }

    #[test]
    fn ebs_cost_scales_with_usage() {
        let m = CostModel::default();
        let small = m.ebs_cost(100.0, 3600.0, 1.0e6);
        let large = m.ebs_cost(1000.0, 3600.0, 1.0e7);
        assert!(large > small);
        // 100 GB for 1 hour at $0.10/GB-month is tiny but nonzero.
        assert!(small > 0.0 && small < 1.0);
    }

    #[test]
    fn price_sheet_lookup() {
        let p = PriceSheet::default();
        assert_eq!(p.hourly(InstanceType::Cc1_4xlarge), 1.30);
        assert_eq!(p.hourly(InstanceType::Cc2_8xlarge), 2.40);
    }
}
