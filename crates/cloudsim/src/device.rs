//! Virtual disk devices: EBS volumes, local ephemeral disks, and SSDs.
//!
//! The calibration targets the 2012-era measurements the paper builds on
//! (its companion study [32] and common EC2 benchmarking of the time):
//! a single ephemeral spindle streams ~110 MB/s, a standard EBS volume
//! ~75 MB/s with noticeably higher variance (it is remote, multi-tenant
//! storage), and the SSD option streams ~260 MB/s.  Crucially, **EBS
//! traffic traverses the instance NIC**, so EBS-backed I/O servers contend
//! with file-system client traffic on the same link — the mechanism behind
//! the paper's observation 3 (§5.6): "ephemeral disks usually perform
//! better than EBS when there is more than one I/O server deployed".

use crate::units::MB_S;

/// Disk device kinds selectable in the ACIC exploration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Elastic Block Store: off-instance, persistent, network-attached.
    Ebs,
    /// Instance-local disk; data does not survive the reservation.
    Ephemeral,
    /// Instance-local SSD (mentioned in §3.1; not part of the Table 1
    /// space, but supported so the space can be extended — §8 future work).
    Ssd,
}

impl DeviceKind {
    /// Device kinds appearing in the Table 1 exploration space.
    pub const TABLE1: [DeviceKind; 2] = [DeviceKind::Ebs, DeviceKind::Ephemeral];

    /// Short label used in configuration strings (`eph.`, `EBS`).
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Ebs => "EBS",
            DeviceKind::Ephemeral => "eph",
            DeviceKind::Ssd => "ssd",
        }
    }

    /// The baseline performance profile for one device of this kind.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceKind::Ebs => DeviceProfile {
                kind: self,
                seq_read_bps: 90.0 * MB_S,
                seq_write_bps: 75.0 * MB_S,
                per_op_latency: 900e-6,
                jitter_sigma: 0.15,
                via_nic: true,
                random_efficiency: 0.40,
            },
            DeviceKind::Ephemeral => DeviceProfile {
                kind: self,
                seq_read_bps: 130.0 * MB_S,
                seq_write_bps: 110.0 * MB_S,
                per_op_latency: 400e-6,
                jitter_sigma: 0.05,
                via_nic: false,
                random_efficiency: 0.25,
            },
            DeviceKind::Ssd => DeviceProfile {
                kind: self,
                seq_read_bps: 270.0 * MB_S,
                seq_write_bps: 260.0 * MB_S,
                per_op_latency: 80e-6,
                jitter_sigma: 0.03,
                via_nic: false,
                random_efficiency: 0.90,
            },
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Performance profile of a single device instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Which kind this profile describes.
    pub kind: DeviceKind,
    /// Sequential read bandwidth, bytes/second.
    pub seq_read_bps: f64,
    /// Sequential write bandwidth, bytes/second.
    pub seq_write_bps: f64,
    /// Fixed service latency per I/O operation reaching the device, seconds.
    pub per_op_latency: f64,
    /// Lognormal sigma of the multi-tenant performance jitter applied per
    /// run (EBS is far noisier than local disks).
    pub jitter_sigma: f64,
    /// Whether traffic to this device traverses the instance NIC.
    pub via_nic: bool,
    /// Fraction of sequential bandwidth retained under random access
    /// (spindles seek; SSDs barely care).
    pub random_efficiency: f64,
}

impl DeviceProfile {
    /// Bandwidth for the given direction.
    pub fn bps(&self, write: bool) -> f64 {
        if write {
            self.seq_write_bps
        } else {
            self.seq_read_bps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_streams_faster_than_ebs() {
        let eph = DeviceKind::Ephemeral.profile();
        let ebs = DeviceKind::Ebs.profile();
        assert!(eph.seq_write_bps > ebs.seq_write_bps);
        assert!(eph.seq_read_bps > ebs.seq_read_bps);
    }

    #[test]
    fn ebs_is_remote_and_noisy() {
        let ebs = DeviceKind::Ebs.profile();
        assert!(ebs.via_nic, "EBS traffic must share the instance NIC");
        assert!(ebs.jitter_sigma > DeviceKind::Ephemeral.profile().jitter_sigma);
    }

    #[test]
    fn local_devices_bypass_nic() {
        assert!(!DeviceKind::Ephemeral.profile().via_nic);
        assert!(!DeviceKind::Ssd.profile().via_nic);
    }

    #[test]
    fn directioned_bandwidth_lookup() {
        let p = DeviceKind::Ephemeral.profile();
        assert_eq!(p.bps(true), p.seq_write_bps);
        assert_eq!(p.bps(false), p.seq_read_bps);
    }

    #[test]
    fn random_access_penalties_are_ordered_by_medium() {
        // Spinning ephemeral disks seek worst; SSDs barely notice.
        let eph = DeviceKind::Ephemeral.profile().random_efficiency;
        let ebs = DeviceKind::Ebs.profile().random_efficiency;
        let ssd = DeviceKind::Ssd.profile().random_efficiency;
        assert!(eph < ebs && ebs < ssd);
        for e in [eph, ebs, ssd] {
            assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn table1_space_has_two_device_kinds() {
        assert_eq!(DeviceKind::TABLE1.len(), 2);
        assert_eq!(DeviceKind::Ebs.label(), "EBS");
        assert_eq!(DeviceKind::Ephemeral.label(), "eph");
    }
}
