//! Reusable per-run simulation state.
//!
//! A [`SimArena`] owns every vector a simulation run needs — construction
//! pools (resource/flow storage, recycled name `String`s and path `Vec`s),
//! engine scratch for both cores, and the run outputs (finish times,
//! served bytes).  Campaign loops keep one arena per worker thread and
//! cycle it through build → run → reclaim, so a full training sweep does
//! zero steady-state allocation: after the first point warms the pools,
//! every subsequent point reuses the same heap blocks.
//!
//! The module-level [`stats`] counters make that property observable
//! (`train --report` surfaces them): `runs` counts engine invocations,
//! `pool_misses` counts the times a pooled simulation had to allocate
//! because a pool ran dry.  In steady state the miss count stays flat
//! while runs climb.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::Simulation;
use crate::events::{Activation, Group};
use crate::flow::FlowSpec;
use crate::resource::{Resource, ResourceId};
use crate::sharing::ClassState;

static RUNS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn count_run() {
    RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide arena counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total simulation runs (both engines, pooled or not).
    pub runs: u64,
    /// Allocations forced by an empty pool in a pooled simulation; flat in
    /// steady state.
    pub pool_misses: u64,
}

/// Snapshot the process-wide run / pool-miss counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        runs: RUNS.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
    }
}

/// All heap storage one simulation run needs, reusable across runs.
#[derive(Debug, Default)]
pub struct SimArena {
    // Construction pools handed to pooled simulations.
    pub(crate) resources: Vec<Resource>,
    pub(crate) flows: Vec<FlowSpec>,
    pub(crate) names: Vec<String>,
    pub(crate) paths: Vec<Vec<ResourceId>>,
    // Run outputs.
    pub(crate) finish: Vec<f64>,
    pub(crate) served: Vec<f64>,
    // Reference-engine scratch.
    pub(crate) pending: Vec<usize>,
    pub(crate) active: Vec<usize>,
    pub(crate) remaining: Vec<f64>,
    pub(crate) rates: Vec<f64>,
    pub(crate) frozen: Vec<bool>,
    pub(crate) unfrozen_count: Vec<usize>,
    pub(crate) res_remaining: Vec<f64>,
    // Event-engine scratch.
    pub(crate) order: Vec<usize>,
    pub(crate) groups: Vec<Group>,
    pub(crate) classes: Vec<ClassState>,
    pub(crate) class_order: Vec<usize>,
    pub(crate) active_groups: Vec<usize>,
    pub(crate) active_classes: Vec<usize>,
    pub(crate) heap: Vec<Activation>,
    // Pool misses reclaimed from simulations built out of this arena.
    misses: u64,
}

impl SimArena {
    /// A fresh arena with empty pools (the first run warms them).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hand out an empty pooled simulation backed by this arena's vectors.
    ///
    /// The simulation skips label recording (campaign runs never read
    /// labels, and formatting them would allocate); use
    /// [`Simulation::new`] when labels matter.  Pass the simulation back
    /// via [`Self::reclaim`] when done — dropping it instead leaks the
    /// pooled storage back to the allocator.
    pub fn simulation(&mut self) -> Simulation {
        Simulation::pooled(
            std::mem::take(&mut self.resources),
            std::mem::take(&mut self.flows),
            std::mem::take(&mut self.names),
            std::mem::take(&mut self.paths),
        )
    }

    /// Take a finished (or failed) simulation's storage back into the pools.
    pub fn reclaim(&mut self, sim: Simulation) {
        let (resources, flows, names, paths, misses) = sim.into_pools();
        self.resources = resources;
        self.flows = flows;
        self.names = names;
        self.paths = paths;
        self.misses += misses;
        if misses > 0 {
            POOL_MISSES.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Pool misses accumulated by simulations reclaimed into this arena
    /// (local counterpart of the process-wide [`stats`] counter).
    pub fn pool_misses(&self) -> u64 {
        self.misses
    }

    /// Per-flow finish times from the last
    /// [`Simulation::run_makespan_in`] call (`f64::INFINITY` marks an
    /// unfinished flow).
    pub fn finish(&self) -> &[f64] {
        &self.finish
    }

    /// Per-resource served bytes from the last
    /// [`Simulation::run_makespan_in`] call.
    pub fn served(&self) -> &[f64] {
        &self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_cycle_through_an_arena_hits_the_pools() {
        let mut arena = SimArena::new();
        for cycle in 0..3 {
            let mut sim = arena.simulation();
            let a = sim.add_resource_fmt(format_args!("nic{}", 0), 100.0);
            let b = sim.add_resource_fmt(format_args!("nic{}", 1), 50.0);
            sim.push_flow(500.0, &[a, b]);
            sim.push_flow(500.0, &[a]);
            let stats = sim.run_makespan_in(&mut arena).unwrap();
            assert!(stats.makespan > 0.0);
            arena.reclaim(sim);
            // Cold start (cycle 0) allocates 2 names + 2 paths; steady
            // state reuses them, so the miss count never moves again.
            assert_eq!(arena.pool_misses(), 4, "cycle {cycle} allocated");
        }
        assert_eq!(arena.names.len(), 2);
        assert_eq!(arena.paths.len(), 2);
    }

    #[test]
    fn outputs_are_exposed_through_accessors() {
        let mut arena = SimArena::new();
        let mut sim = arena.simulation();
        let r = sim.add_resource_fmt(format_args!("link"), 100.0);
        sim.push_flow(1000.0, &[r]);
        let stats = sim.run_makespan_in(&mut arena).unwrap();
        arena.reclaim(sim);
        assert_eq!(stats.makespan, 10.0);
        assert_eq!(arena.finish(), &[10.0]);
        assert_eq!(arena.served(), &[1000.0]);
    }
}
