//! Cluster assembly: turn an I/O-system configuration into simulator
//! resources (nodes, NICs, storage arrays) plus the bookkeeping the
//! file-system models need (which node hosts which MPI rank, which nodes
//! run I/O servers, how many instances are billed).

use crate::device::DeviceKind;
use crate::engine::Simulation;
use crate::error::CloudSimError;
use crate::instance::InstanceType;
use crate::network::NodeNet;
use crate::raid::Raid0;
use crate::resource::ResourceId;
use crate::rng::SplitMix64;

/// I/O server placement strategy (Table 1 "Placement").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Placement {
    /// I/O servers run on extra, separate instances.
    Dedicated,
    /// I/O servers share instances with a subset of the compute nodes.
    PartTime,
}

impl Placement {
    /// Both strategies, Table 1 order.
    pub const ALL: [Placement; 2] = [Placement::PartTime, Placement::Dedicated];

    /// One-letter label as used in the paper's configuration strings
    /// (`nfs.D.eph`, `pvfs.4.P.eph`).
    pub fn letter(self) -> char {
        match self {
            Placement::Dedicated => 'D',
            Placement::PartTime => 'P',
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Dedicated => f.write_str("dedicated"),
            Placement::PartTime => f.write_str("part-time"),
        }
    }
}

/// What a node does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Runs MPI processes only.
    Compute,
    /// Runs an I/O server only (dedicated placement).
    IoServer,
    /// Runs both (part-time placement).
    Both,
}

/// Storage array attached to an I/O-server node.
#[derive(Debug, Clone, Copy)]
pub struct StorageAttachment {
    /// Write channel of the array.
    pub write: ResourceId,
    /// Read channel of the array.
    pub read: ResourceId,
    /// Per-operation device latency, seconds.
    pub per_op_latency: f64,
    /// EBS-style arrays are reached through the node NIC.
    pub via_nic: bool,
    /// Fraction of sequential bandwidth retained under random access.
    pub random_efficiency: f64,
}

/// One simulated instance.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Network endpoints.
    pub net: NodeNet,
    /// Attached storage array, for I/O-server nodes.
    pub storage: Option<StorageAttachment>,
    /// Role of this node.
    pub role: NodeRole,
}

/// Declarative description of the cluster to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Instance type of every node (the space is homogeneous).
    pub instance_type: InstanceType,
    /// Number of instances hosting MPI processes.
    pub compute_instances: usize,
    /// Number of file-system I/O servers.
    pub io_servers: usize,
    /// Where the I/O servers live.
    pub placement: Placement,
    /// Per-server storage array.
    pub storage: Raid0,
}

impl ClusterSpec {
    /// Spec sized for `nprocs` MPI processes (one per core).
    pub fn for_procs(
        instance_type: InstanceType,
        nprocs: usize,
        io_servers: usize,
        placement: Placement,
        storage: Raid0,
    ) -> Self {
        Self {
            instance_type,
            compute_instances: instance_type.instances_for(nprocs.max(1)),
            io_servers,
            placement,
            storage,
        }
    }

    /// Billed instance count: part-time servers are free riders, dedicated
    /// servers are extra instances (this is why the two placements trade
    /// off performance against cost — §3.1).
    pub fn total_instances(&self) -> usize {
        match self.placement {
            Placement::Dedicated => self.compute_instances + self.io_servers,
            Placement::PartTime => self.compute_instances,
        }
    }

    /// Validate the spec (part-time needs at least as many compute nodes as
    /// servers; a RAID width cannot exceed the instance's ephemeral disks).
    pub fn validate(&self) -> Result<(), CloudSimError> {
        if self.compute_instances == 0 {
            return Err(CloudSimError::InvalidCluster("no compute instances".into()));
        }
        if self.io_servers == 0 {
            return Err(CloudSimError::InvalidCluster("no I/O servers".into()));
        }
        if self.placement == Placement::PartTime && self.io_servers > self.compute_instances {
            return Err(CloudSimError::InvalidCluster(format!(
                "{} part-time I/O servers need at least that many compute instances (have {})",
                self.io_servers, self.compute_instances
            )));
        }
        if self.storage.kind == DeviceKind::Ephemeral
            && self.storage.width > self.instance_type.ephemeral_disks()
        {
            return Err(CloudSimError::InvalidCluster(format!(
                "RAID width {} exceeds the {} ephemeral disks of {}",
                self.storage.width,
                self.instance_type.ephemeral_disks(),
                self.instance_type
            )));
        }
        Ok(())
    }
}

/// Recycled vectors for [`Cluster`] construction; campaign loops keep one
/// per worker and cycle it through build → run → [`ClusterPool::reclaim`]
/// so cluster assembly allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct ClusterPool {
    nodes: Vec<Node>,
    servers: Vec<usize>,
    uplinks: Vec<(ResourceId, ResourceId)>,
}

impl ClusterPool {
    /// An empty pool (the first build warms it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a finished cluster's vectors back into the pool.
    pub fn reclaim(&mut self, cluster: Cluster) {
        self.nodes = cluster.nodes;
        self.nodes.clear();
        self.servers = cluster.io_server_nodes;
        self.servers.clear();
        self.uplinks = cluster.rack_uplinks;
        self.uplinks.clear();
    }
}

/// A built cluster: nodes materialized as simulator resources.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The spec this cluster was built from.
    pub spec: ClusterSpec,
    /// All nodes; compute nodes first, then any dedicated I/O nodes.
    pub nodes: Vec<Node>,
    /// Indices (into `nodes`) of the I/O-server nodes, in server order.
    pub io_server_nodes: Vec<usize>,
    /// Fabric layout (flat full-bisection by default).
    pub fabric: crate::network::FabricSpec,
    /// Per-rack uplink resources `(up, down)` when the fabric is tiered.
    pub rack_uplinks: Vec<(ResourceId, ResourceId)>,
}

impl Cluster {
    /// Materialize `spec` inside `sim` on a flat full-bisection fabric.
    /// Per-run device jitter is drawn from `rng`, one independent draw per
    /// storage array.
    pub fn build(
        spec: ClusterSpec,
        sim: &mut Simulation,
        rng: &mut SplitMix64,
    ) -> Result<Self, CloudSimError> {
        Self::build_with_fabric(spec, crate::network::FabricSpec::FLAT, sim, rng)
    }

    /// Materialize `spec` on an explicit fabric (rack uplinks become shared
    /// resources that inter-rack flows traverse).
    pub fn build_with_fabric(
        spec: ClusterSpec,
        fabric: crate::network::FabricSpec,
        sim: &mut Simulation,
        rng: &mut SplitMix64,
    ) -> Result<Self, CloudSimError> {
        let mut pool = ClusterPool::new();
        Self::build_with_fabric_pooled(spec, fabric, sim, rng, &mut pool)
    }

    /// Like [`Self::build_with_fabric`], but recycling the vectors held in
    /// `pool` so repeated builds allocate nothing in steady state.
    pub fn build_with_fabric_pooled(
        spec: ClusterSpec,
        fabric: crate::network::FabricSpec,
        sim: &mut Simulation,
        rng: &mut SplitMix64,
        pool: &mut ClusterPool,
    ) -> Result<Self, CloudSimError> {
        spec.validate()?;
        let n_nodes = spec.compute_instances
            + match spec.placement {
                Placement::Dedicated => spec.io_servers,
                Placement::PartTime => 0,
            };

        let mut nodes = std::mem::take(&mut pool.nodes);
        nodes.clear();
        nodes.reserve(n_nodes);
        for i in 0..n_nodes {
            let net = NodeNet::create(sim, i, spec.instance_type);
            nodes.push(Node { net, storage: None, role: NodeRole::Compute });
        }

        let mut io_server_nodes = std::mem::take(&mut pool.servers);
        io_server_nodes.clear();
        match spec.placement {
            // Dedicated servers are the trailing extra nodes.
            Placement::Dedicated => io_server_nodes.extend(spec.compute_instances..n_nodes),
            // Part-time servers co-locate with the first compute nodes —
            // which is also where collective-I/O aggregators live, giving
            // the locality effect of §5.6 observation 1.
            Placement::PartTime => io_server_nodes.extend(0..spec.io_servers),
        }

        for (s, &ni) in io_server_nodes.iter().enumerate() {
            let prof = spec.storage.effective_profile(rng);
            let write = sim.add_resource_fmt(format_args!("srv{s}.array.wr"), prof.seq_write_bps);
            let read = sim.add_resource_fmt(format_args!("srv{s}.array.rd"), prof.seq_read_bps);
            let node = &mut nodes[ni];
            node.storage = Some(StorageAttachment {
                write,
                read,
                per_op_latency: prof.per_op_latency,
                via_nic: prof.via_nic,
                random_efficiency: prof.random_efficiency,
            });
            node.role = match spec.placement {
                Placement::Dedicated => NodeRole::IoServer,
                Placement::PartTime => NodeRole::Both,
            };
        }

        let mut rack_uplinks = std::mem::take(&mut pool.uplinks);
        rack_uplinks.clear();
        if fabric.is_tiered() {
            let racks = n_nodes.div_ceil(fabric.rack_size);
            let cap = fabric.uplink_bps(spec.instance_type.nic_bps());
            for r in 0..racks {
                let up = sim.add_resource_fmt(format_args!("rack{r}.uplink.up"), cap);
                let down = sim.add_resource_fmt(format_args!("rack{r}.uplink.down"), cap);
                rack_uplinks.push((up, down));
            }
        }

        Ok(Self { spec, nodes, io_server_nodes, fabric, rack_uplinks })
    }

    /// Node hosting MPI rank `rank` under block distribution.
    pub fn node_of_rank(&self, rank: usize) -> usize {
        let node = rank / self.spec.instance_type.cores();
        debug_assert!(node < self.spec.compute_instances);
        node.min(self.spec.compute_instances - 1)
    }

    /// Node hosting I/O server `server` (index into server order).
    pub fn node_of_server(&self, server: usize) -> usize {
        self.io_server_nodes[server]
    }

    /// Append the network path from node `from` to node `to` onto `out`.
    /// Inter-rack traffic additionally traverses both racks' uplinks.
    /// Allocation-free: this runs once per flow in the campaign hot path.
    pub fn net_path(&self, from: usize, to: usize, out: &mut Vec<ResourceId>) {
        if from == to {
            out.push(self.nodes[from].net.bus);
            return;
        }
        if self.fabric.is_tiered() {
            let (ra, rb) = (self.fabric.rack_of(from), self.fabric.rack_of(to));
            if ra != rb {
                out.push(self.nodes[from].net.tx);
                out.push(self.rack_uplinks[ra].0);
                out.push(self.rack_uplinks[rb].1);
                out.push(self.nodes[to].net.rx);
                return;
            }
        }
        out.push(self.nodes[from].net.tx);
        out.push(self.nodes[to].net.rx);
    }

    /// Append the storage path at server node `node` onto `out`.
    /// EBS arrays add the node NIC (tx for writes leaving the instance
    /// toward the EBS backend, rx for reads coming back).
    ///
    /// # Panics
    /// Panics when the node carries no storage array; server topologies are
    /// built by [`ClusterSpec`], so use [`Self::try_storage_path`] when the
    /// node index comes from user-controlled data.
    pub fn storage_path(&self, node: usize, write: bool, out: &mut Vec<ResourceId>) {
        self.try_storage_path(node, write, out)
            .expect("storage_path called on a node without storage");
    }

    /// Fallible variant of [`Self::storage_path`]: `Err` when `node` is out
    /// of range or carries no storage array.
    pub fn try_storage_path(
        &self,
        node: usize,
        write: bool,
        out: &mut Vec<ResourceId>,
    ) -> Result<(), CloudSimError> {
        let st = self
            .nodes
            .get(node)
            .ok_or_else(|| {
                CloudSimError::InvalidCluster(format!(
                    "storage path requested on node {node}, cluster has {}",
                    self.nodes.len()
                ))
            })?
            .storage
            .ok_or_else(|| {
                CloudSimError::InvalidCluster(format!("node {node} carries no storage array"))
            })?;
        if write {
            if st.via_nic {
                out.push(self.nodes[node].net.tx);
            }
            out.push(st.write);
        } else {
            out.push(st.read);
            if st.via_nic {
                out.push(self.nodes[node].net.rx);
            }
        }
        Ok(())
    }

    /// Per-operation latency of the array at `node`.
    pub fn storage_latency(&self, node: usize) -> f64 {
        self.nodes[node].storage.map(|s| s.per_op_latency).unwrap_or(0.0)
    }

    /// Random-access efficiency of the array at `node` (1.0 when there is
    /// no storage attached).
    pub fn storage_random_efficiency(&self, node: usize) -> f64 {
        self.nodes[node].storage.map(|s| s.random_efficiency).unwrap_or(1.0)
    }

    /// Billed instance count.
    pub fn total_instances(&self) -> usize {
        self.spec.total_instances()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(placement: Placement, io_servers: usize) -> ClusterSpec {
        ClusterSpec {
            instance_type: InstanceType::Cc2_8xlarge,
            compute_instances: 4,
            io_servers,
            placement,
            storage: Raid0::new(DeviceKind::Ephemeral, 2),
        }
    }

    #[test]
    fn dedicated_adds_extra_instances() {
        let s = spec(Placement::Dedicated, 2);
        assert_eq!(s.total_instances(), 6);
        let s = spec(Placement::PartTime, 2);
        assert_eq!(s.total_instances(), 4);
    }

    #[test]
    fn build_dedicated_places_servers_on_tail_nodes() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let c = Cluster::build(spec(Placement::Dedicated, 2), &mut sim, &mut rng).unwrap();
        assert_eq!(c.nodes.len(), 6);
        assert_eq!(c.io_server_nodes, vec![4, 5]);
        assert!(c.nodes[4].storage.is_some());
        assert!(c.nodes[0].storage.is_none());
        assert_eq!(c.nodes[4].role, NodeRole::IoServer);
        assert_eq!(c.nodes[0].role, NodeRole::Compute);
    }

    #[test]
    fn build_parttime_colocates_servers_with_leading_compute_nodes() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let c = Cluster::build(spec(Placement::PartTime, 2), &mut sim, &mut rng).unwrap();
        assert_eq!(c.nodes.len(), 4);
        assert_eq!(c.io_server_nodes, vec![0, 1]);
        assert_eq!(c.nodes[0].role, NodeRole::Both);
        assert_eq!(c.nodes[3].role, NodeRole::Compute);
    }

    #[test]
    fn try_storage_path_rejects_bad_nodes_instead_of_panicking() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let c = Cluster::build(spec(Placement::Dedicated, 2), &mut sim, &mut rng).unwrap();
        let mut out = Vec::new();
        // A server node works and pushes the same path as the panicking API.
        c.try_storage_path(4, true, &mut out).unwrap();
        let mut reference = Vec::new();
        c.storage_path(4, true, &mut reference);
        assert_eq!(out, reference);
        assert!(!out.is_empty());
        // A compute node has no array; an out-of-range index is not a panic.
        let err = c.try_storage_path(0, true, &mut out).unwrap_err();
        assert!(err.to_string().contains("no storage array"), "{err}");
        let err = c.try_storage_path(99, false, &mut out).unwrap_err();
        assert!(err.to_string().contains("node 99"), "{err}");
    }

    #[test]
    fn parttime_cannot_exceed_compute_nodes() {
        let s = spec(Placement::PartTime, 5);
        assert!(s.validate().is_err());
    }

    #[test]
    fn raid_width_bounded_by_ephemeral_disks() {
        let mut s = spec(Placement::Dedicated, 1);
        s.storage = Raid0::new(DeviceKind::Ephemeral, 5); // cc2 has 4
        assert!(s.validate().is_err());
        s.storage = Raid0::new(DeviceKind::Ebs, 8); // EBS volumes are not bounded
        assert!(s.validate().is_ok());
    }

    #[test]
    fn zero_servers_or_nodes_rejected() {
        let mut s = spec(Placement::Dedicated, 0);
        assert!(s.validate().is_err());
        s = spec(Placement::Dedicated, 1);
        s.compute_instances = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rank_mapping_is_block_distribution() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let c = Cluster::build(spec(Placement::Dedicated, 1), &mut sim, &mut rng).unwrap();
        assert_eq!(c.node_of_rank(0), 0);
        assert_eq!(c.node_of_rank(15), 0);
        assert_eq!(c.node_of_rank(16), 1);
        assert_eq!(c.node_of_rank(63), 3);
    }

    #[test]
    fn for_procs_sizes_instances() {
        let s = ClusterSpec::for_procs(
            InstanceType::Cc2_8xlarge,
            256,
            4,
            Placement::Dedicated,
            Raid0::new(DeviceKind::Ephemeral, 1),
        );
        assert_eq!(s.compute_instances, 16);
        assert_eq!(s.total_instances(), 20);
    }

    #[test]
    fn ebs_storage_paths_include_nic() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let mut s = spec(Placement::Dedicated, 1);
        s.storage = Raid0::new(DeviceKind::Ebs, 2);
        let c = Cluster::build(s, &mut sim, &mut rng).unwrap();
        let node = c.node_of_server(0);
        let mut wr = Vec::new();
        c.storage_path(node, true, &mut wr);
        assert_eq!(wr.len(), 2, "EBS write path = nic.tx + array.wr");
        assert_eq!(wr[0], c.nodes[node].net.tx);
        let mut rd = Vec::new();
        c.storage_path(node, false, &mut rd);
        assert_eq!(rd.len(), 2, "EBS read path = array.rd + nic.rx");
        assert_eq!(rd[1], c.nodes[node].net.rx);
    }

    #[test]
    fn ephemeral_storage_paths_skip_nic() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let c = Cluster::build(spec(Placement::Dedicated, 1), &mut sim, &mut rng).unwrap();
        let node = c.node_of_server(0);
        let mut wr = Vec::new();
        c.storage_path(node, true, &mut wr);
        assert_eq!(wr.len(), 1);
        let mut rd = Vec::new();
        c.storage_path(node, false, &mut rd);
        assert_eq!(rd.len(), 1);
    }

    #[test]
    fn storage_latency_zero_for_compute_nodes() {
        let mut sim = Simulation::new();
        let mut rng = SplitMix64::new(1);
        let c = Cluster::build(spec(Placement::Dedicated, 1), &mut sim, &mut rng).unwrap();
        assert_eq!(c.storage_latency(0), 0.0);
        assert!(c.storage_latency(c.node_of_server(0)) > 0.0);
    }

    #[test]
    fn pooled_build_matches_fresh_build() {
        let mut pool = ClusterPool::new();
        let mut reference_paths: Option<Vec<Vec<ResourceId>>> = None;
        for _ in 0..3 {
            let mut sim = Simulation::new();
            let mut rng = SplitMix64::new(7);
            let c = Cluster::build_with_fabric_pooled(
                spec(Placement::Dedicated, 2),
                crate::network::FabricSpec::oversubscribed(2, 4.0),
                &mut sim,
                &mut rng,
                &mut pool,
            )
            .unwrap();
            let mut paths = Vec::new();
            for (from, to) in [(0, 0), (0, 1), (0, 5), (3, 4)] {
                let mut p = Vec::new();
                c.net_path(from, to, &mut p);
                paths.push(p);
            }
            let mut st = Vec::new();
            c.storage_path(c.node_of_server(0), true, &mut st);
            paths.push(st);
            match &reference_paths {
                None => reference_paths = Some(paths),
                Some(r) => assert_eq!(r, &paths, "pooled rebuild changed the topology"),
            }
            pool.reclaim(c);
        }
    }

    #[test]
    fn placement_letters_match_paper_notation() {
        assert_eq!(Placement::Dedicated.letter(), 'D');
        assert_eq!(Placement::PartTime.letter(), 'P');
        assert_eq!(Placement::Dedicated.to_string(), "dedicated");
    }
}
