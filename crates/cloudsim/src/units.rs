//! Unit helpers: bytes, bandwidths, and durations are all plain `f64`s in
//! this crate (bytes, bytes/second, seconds); these constants and conversion
//! helpers keep call sites readable and keep the magnitudes honest.

/// One kibibyte in bytes.
pub const KIB: f64 = 1024.0;
/// One mebibyte in bytes.
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Megabytes-per-second expressed in bytes/second (decimal MB, as disk
/// vendors quote sequential bandwidth).
pub const MB_S: f64 = 1.0e6;
/// Gigabits-per-second expressed in bytes/second (as NICs are quoted).
pub const GBIT_S: f64 = 1.0e9 / 8.0;

/// Seconds in one hour (billing granularity on EC2).
pub const HOUR: f64 = 3600.0;

/// Convert a mebibyte count to bytes.
#[inline]
pub fn mib(n: f64) -> f64 {
    n * MIB
}

/// Convert a gibibyte count to bytes.
#[inline]
pub fn gib(n: f64) -> f64 {
    n * GIB
}

/// Convert a kibibyte count to bytes.
#[inline]
pub fn kib(n: f64) -> f64 {
    n * KIB
}

/// Render a byte count as a human-readable string (for reports).
pub fn fmt_bytes(bytes: f64) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes / GIB)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes / MIB)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes / KIB)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Render a duration in seconds as a human-readable string (for reports).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else {
        format!("{:.1} ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(mib(1.0), 1048576.0);
        assert_eq!(gib(2.0), 2.0 * 1073741824.0);
        assert_eq!(kib(64.0), 65536.0);
    }

    #[test]
    fn bandwidth_constants_have_expected_magnitude() {
        // A 10 GbE NIC moves 1.25e9 bytes per second.
        assert!((10.0 * GBIT_S - 1.25e9).abs() < 1e-6);
        assert_eq!(MB_S, 1.0e6);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2.0 * KIB), "2.0 KiB");
        assert_eq!(fmt_bytes(3.5 * MIB), "3.5 MiB");
        assert_eq!(fmt_bytes(6.4 * GIB), "6.4 GiB");
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(12.3), "12.30 s");
        assert_eq!(fmt_secs(90.0), "1.5 min");
        assert_eq!(fmt_secs(7200.0), "2.00 h");
    }
}
