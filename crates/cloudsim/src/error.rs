//! Error type for the simulator.

use std::fmt;

/// Errors produced by the cloud simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudSimError {
    /// A flow was declared with a non-positive byte count.
    InvalidFlowSize { bytes: f64 },
    /// A flow referenced a resource id that does not exist in the simulation.
    UnknownResource { resource: usize },
    /// A flow traverses no resources, so its rate would be unbounded.
    PathlessFlow { flow: usize },
    /// A flow was declared with a non-finite or negative release time or
    /// latency; such a flow would poison the event queue ordering.
    InvalidFlowTiming { flow: usize, release: f64, latency: f64 },
    /// A resource was declared with a non-positive capacity.
    InvalidCapacity { name: String, capacity: f64 },
    /// The engine detected active flows that can make no progress.
    Stalled { time: f64, active: usize },
    /// A cluster specification was internally inconsistent.
    InvalidCluster(String),
    /// An injected fault terminated the run (used by failure-injection tests;
    /// mirrors the paper's §5.6 observation 5 about I/O server connection
    /// failures during training).
    InjectedFault { time: f64, what: String },
}

impl fmt::Display for CloudSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudSimError::InvalidFlowSize { bytes } => {
                write!(f, "flow size must be positive, got {bytes}")
            }
            CloudSimError::UnknownResource { resource } => {
                write!(f, "flow references unknown resource id {resource}")
            }
            CloudSimError::PathlessFlow { flow } => {
                write!(f, "flow {flow} traverses no resources")
            }
            CloudSimError::InvalidFlowTiming { flow, release, latency } => {
                write!(
                    f,
                    "flow {flow} has invalid timing (release {release}, latency {latency}); \
                     both must be finite and non-negative"
                )
            }
            CloudSimError::InvalidCapacity { name, capacity } => {
                write!(f, "resource {name:?} has invalid capacity {capacity}")
            }
            CloudSimError::Stalled { time, active } => {
                write!(f, "simulation stalled at t={time} with {active} active flows")
            }
            CloudSimError::InvalidCluster(msg) => write!(f, "invalid cluster: {msg}"),
            CloudSimError::InjectedFault { time, what } => {
                write!(f, "injected fault at t={time}: {what}")
            }
        }
    }
}

impl std::error::Error for CloudSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CloudSimError::InvalidFlowSize { bytes: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = CloudSimError::Stalled { time: 3.5, active: 2 };
        assert!(e.to_string().contains("3.5"));
        assert!(e.to_string().contains("2"));
        let e = CloudSimError::InvalidCluster("no nodes".into());
        assert!(e.to_string().contains("no nodes"));
        let e = CloudSimError::InvalidFlowTiming { flow: 4, release: f64::NAN, latency: -1.0 };
        assert!(e.to_string().contains("flow 4"));
        assert!(e.to_string().contains("-1"));
    }
}
