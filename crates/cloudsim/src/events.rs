//! The event-driven simulator core: a binary-heap activation queue over
//! *groups* of identical flows, with class-level fair sharing.
//!
//! The reference engine walks every flow on every rate epoch, which makes a
//! campaign point cost O(F · levels · R).  Training workloads are massively
//! redundant, though: every I/O process on a node issues the same transfer
//! at the same time over the same path.  This core exploits that in two
//! layers:
//!
//! 1. **Groups** — flows with bit-equal activation time, bit-equal byte
//!    count, and the same resource path are collapsed into one group that
//!    advances in lockstep (they receive identical rates under max-min
//!    sharing, so their remaining bytes stay bit-equal forever).
//! 2. **Classes** — groups that share a path (but differ in size or start
//!    time) are deduplicated into one weighted entry for the progressive
//!    filling pass, so the rate computation costs O(C · P + levels · R)
//!    instead of O(F · levels).
//!
//! Pending activations live in a binary heap keyed by activation time, so
//! each event pays O(log G) for queue maintenance and O(G) to advance the
//! active set — independent of the raw flow count F.  The trajectory
//! (epoch times, activations, completions, finish times, makespan) is
//! bit-identical to the reference engine; only per-resource served-byte
//! totals are re-associated (one `moved * members` add per group instead
//! of `members` separate adds), which is why those are gated at ≤1e-9
//! relative instead of bit equality.  See DESIGN.md §14.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::arena::SimArena;
use crate::engine::{RunStats, Simulation};
use crate::error::CloudSimError;
use crate::sharing::{fill_class_rates, ClassState, EPS};

/// A maximal run of identical flows (same activation bits, byte bits, and
/// path) that the engine advances as one unit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Group {
    /// Offset of the member flow indices inside `SimArena::order`.
    pub(crate) start: usize,
    /// Number of member flows.
    pub(crate) len: usize,
    /// Shared activation time (release + latency).
    pub(crate) activation: f64,
    /// Remaining bytes of *each* member (they stay bit-equal in lockstep).
    pub(crate) remaining: f64,
    /// Index of the path class this group belongs to.
    pub(crate) class: usize,
}

/// Heap entry: a group waiting for its activation time.  Ordered so that
/// `BinaryHeap` pops the earliest activation first, with the group index as
/// a deterministic tie-break.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Activation {
    pub(crate) time: f64,
    pub(crate) group: usize,
}

impl PartialEq for Activation {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Activation {}

impl PartialOrd for Activation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Activation {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the minimum time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.group.cmp(&self.group))
    }
}

/// Run `sim` on the event-driven core, writing finish times and served
/// bytes into `arena`.  Flows must already be validated.
pub(crate) fn run_event(sim: &Simulation, arena: &mut SimArena) -> Result<RunStats, CloudSimError> {
    let resources = &sim.resources;
    let flows = &sim.flows;
    let n = flows.len();
    let nr = resources.len();

    let SimArena {
        finish,
        served,
        order,
        groups,
        classes,
        class_order,
        active_groups,
        active_classes,
        heap,
        unfrozen_count,
        res_remaining,
        ..
    } = arena;

    finish.clear();
    finish.resize(n, f64::INFINITY);
    served.clear();
    served.resize(nr, 0.0);

    if n == 0 {
        return Ok(RunStats { makespan: 0.0, events: 0 });
    }

    unfrozen_count.clear();
    unfrozen_count.resize(nr, 0);
    res_remaining.clear();
    res_remaining.resize(nr, 0.0);

    // --- Collapse flows into groups --------------------------------------
    // Sorting by (activation bits, byte bits, path) makes identical flows
    // adjacent; `total_cmp` equality is bit equality for the floats, which
    // is exactly the condition under which members stay in lockstep.
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| {
        let fa = &flows[a];
        let fb = &flows[b];
        fa.activation_time()
            .total_cmp(&fb.activation_time())
            .then_with(|| fa.bytes.total_cmp(&fb.bytes))
            .then_with(|| fa.path.cmp(&fb.path))
    });

    groups.clear();
    let mut g_start = 0;
    while g_start < n {
        let rep = &flows[order[g_start]];
        let mut g_end = g_start + 1;
        while g_end < n {
            let cand = &flows[order[g_end]];
            let same = rep.activation_time().total_cmp(&cand.activation_time())
                == Ordering::Equal
                && rep.bytes.total_cmp(&cand.bytes) == Ordering::Equal
                && rep.path == cand.path;
            if !same {
                break;
            }
            g_end += 1;
        }
        groups.push(Group {
            start: g_start,
            len: g_end - g_start,
            activation: rep.activation_time(),
            remaining: rep.bytes,
            class: usize::MAX,
        });
        g_start = g_end;
    }

    // --- Deduplicate group paths into classes -----------------------------
    class_order.clear();
    class_order.extend(0..groups.len());
    class_order.sort_by(|&a, &b| {
        flows[order[groups[a].start]].path.cmp(&flows[order[groups[b].start]].path)
    });
    classes.clear();
    let mut prev_rep: Option<usize> = None;
    for &g in class_order.iter() {
        let rep = order[groups[g].start];
        let same = prev_rep.is_some_and(|p| flows[p].path == flows[rep].path);
        if !same {
            classes.push(ClassState { rep, weight: 0, frozen: false, rate: 0.0 });
            prev_rep = Some(rep);
        }
        groups[g].class = classes.len() - 1;
    }

    // --- Event loop --------------------------------------------------------
    heap.clear();
    heap.extend(
        groups
            .iter()
            .enumerate()
            .map(|(g, grp)| Activation { time: grp.activation, group: g }),
    );
    let mut queue = BinaryHeap::from(std::mem::take(heap));

    active_groups.clear();
    active_classes.clear();
    let mut t = 0.0f64;
    let mut makespan = 0.0f64;
    let mut events = 0u64;

    loop {
        // Activate every pending group whose activation time has come.
        while let Some(&a) = queue.peek() {
            if a.time <= t + EPS {
                queue.pop();
                active_groups.push(a.group);
            } else {
                break;
            }
        }

        if active_groups.is_empty() {
            match queue.peek() {
                Some(a) => {
                    // Idle gap: jump to the next activation.
                    t = a.time;
                    continue;
                }
                None => break, // all done
            }
        }

        events += 1;

        // Accumulate live member counts into the path classes.
        for &g in active_groups.iter() {
            let c = groups[g].class;
            if classes[c].weight == 0 {
                active_classes.push(c);
            }
            classes[c].weight += groups[g].len;
        }

        fill_class_rates(resources, flows, classes, active_classes, unfrozen_count, res_remaining);

        // Time to the next completion among active groups.
        let mut dt_complete = f64::INFINITY;
        for &g in active_groups.iter() {
            let rate = classes[groups[g].class].rate;
            if rate > 0.0 {
                dt_complete = dt_complete.min(groups[g].remaining / rate);
            }
        }
        // Time to the next activation.
        let dt_activate = queue.peek().map(|a| a.time - t).unwrap_or(f64::INFINITY);

        let dt = dt_complete.min(dt_activate);
        if !dt.is_finite() {
            let active: usize = active_groups.iter().map(|&g| groups[g].len).sum();
            for &c in active_classes.iter() {
                classes[c].weight = 0;
            }
            active_groups.clear();
            active_classes.clear();
            *heap = queue.into_vec();
            return Err(CloudSimError::Stalled { time: t, active });
        }
        let dt = dt.max(0.0);

        // Advance: drain bytes, accounting served volume once per group.
        for &g in active_groups.iter() {
            let grp = &mut groups[g];
            let rate = classes[grp.class].rate;
            let moved = rate * dt;
            grp.remaining -= moved;
            let members = grp.len as f64;
            for r in &flows[classes[grp.class].rep].path {
                served[r.0] += moved * members;
            }
        }
        t += dt;

        // Reset class weights for the next epoch's accumulation.
        for &c in active_classes.iter() {
            classes[c].weight = 0;
        }
        active_classes.clear();

        // Retire completed groups; all members finish together.
        active_groups.retain(|&g| {
            let grp = &groups[g];
            if grp.remaining <= EPS * flows[order[grp.start]].bytes.max(1.0) {
                for &fi in &order[grp.start..grp.start + grp.len] {
                    finish[fi] = t;
                }
                makespan = makespan.max(t);
                false
            } else {
                true
            }
        });
    }

    // Hand the heap's backing storage back to the arena for the next run.
    *heap = queue.into_vec();
    Ok(RunStats { makespan, events })
}
