//! Amazon EC2 Cluster Compute Instance types as of the paper's testbed
//! (2012/2013): `cc1.4xlarge` and `cc2.8xlarge`.

use crate::units::{GBIT_S, MB_S};

/// The two CCI instance types in the ACIC exploration space (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstanceType {
    /// cc1.4xlarge: 2 × quad-core Xeon, 23 GB, 10 GbE, 2 ephemeral disks.
    Cc1_4xlarge,
    /// cc2.8xlarge: 2 × 8-core Xeon, 60.5 GB, 10 GbE, 4 ephemeral disks
    /// (the paper's evaluation platform).
    Cc2_8xlarge,
}

impl InstanceType {
    /// All instance types, in Table 1 order.
    pub const ALL: [InstanceType; 2] = [InstanceType::Cc1_4xlarge, InstanceType::Cc2_8xlarge];

    /// Physical cores available to MPI processes.
    pub fn cores(self) -> usize {
        match self {
            InstanceType::Cc1_4xlarge => 8,
            InstanceType::Cc2_8xlarge => 16,
        }
    }

    /// Memory in GiB (bounds client-side write-back caching in `fsim`).
    pub fn memory_gib(self) -> f64 {
        match self {
            InstanceType::Cc1_4xlarge => 23.0,
            InstanceType::Cc2_8xlarge => 60.5,
        }
    }

    /// NIC line rate in bytes/second (full duplex; each direction gets this).
    /// Both CCI generations attach 10 GbE; we derate to ~88% for protocol
    /// overhead, which matches the ~1.1 GB/s TCP goodput reported on CCIs.
    pub fn nic_bps(self) -> f64 {
        10.0 * GBIT_S * 0.88
    }

    /// Intra-instance memory-bus bandwidth for loopback I/O, bytes/second.
    pub fn bus_bps(self) -> f64 {
        match self {
            InstanceType::Cc1_4xlarge => 6_000.0 * MB_S,
            InstanceType::Cc2_8xlarge => 8_000.0 * MB_S,
        }
    }

    /// Number of local ("ephemeral") disks shipped with the instance.
    pub fn ephemeral_disks(self) -> usize {
        match self {
            InstanceType::Cc1_4xlarge => 2,
            InstanceType::Cc2_8xlarge => 4,
        }
    }

    /// On-demand hourly price in USD (us-east-1, 2012).
    pub fn hourly_price(self) -> f64 {
        match self {
            InstanceType::Cc1_4xlarge => 1.30,
            InstanceType::Cc2_8xlarge => 2.40,
        }
    }

    /// The EC2 API name.
    pub fn api_name(self) -> &'static str {
        match self {
            InstanceType::Cc1_4xlarge => "cc1.4xlarge",
            InstanceType::Cc2_8xlarge => "cc2.8xlarge",
        }
    }

    /// Instances needed to host `nprocs` MPI processes (one per core).
    pub fn instances_for(self, nprocs: usize) -> usize {
        nprocs.div_ceil(self.cores())
    }
}

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.api_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc2_matches_paper_description() {
        // "two 8-core Intel Xeon processors and 60.5GB of memory" (§5.1)
        let t = InstanceType::Cc2_8xlarge;
        assert_eq!(t.cores(), 16);
        assert_eq!(t.memory_gib(), 60.5);
        assert_eq!(t.ephemeral_disks(), 4);
        assert_eq!(t.api_name(), "cc2.8xlarge");
    }

    #[test]
    fn instances_for_rounds_up() {
        let t = InstanceType::Cc2_8xlarge;
        assert_eq!(t.instances_for(16), 1);
        assert_eq!(t.instances_for(17), 2);
        assert_eq!(t.instances_for(256), 16);
        assert_eq!(InstanceType::Cc1_4xlarge.instances_for(256), 32);
    }

    #[test]
    fn nic_is_roughly_ten_gbe() {
        let bps = InstanceType::Cc2_8xlarge.nic_bps();
        assert!(bps > 1.0e9 && bps < 1.25e9, "derated 10GbE, got {bps}");
    }

    #[test]
    fn cc2_costs_more_than_cc1() {
        assert!(InstanceType::Cc2_8xlarge.hourly_price() > InstanceType::Cc1_4xlarge.hourly_price());
    }

    #[test]
    fn display_uses_api_name() {
        assert_eq!(InstanceType::Cc1_4xlarge.to_string(), "cc1.4xlarge");
    }
}
