//! Fair-sharing rate computation: progressive filling (Bertsekas &
//! Gallager) over individual flows, and its weighted class-level
//! counterpart used by the event-driven core.
//!
//! Both functions implement the *same* algorithm: raise every unfrozen
//! flow's rate uniformly until some resource saturates, freeze the flows
//! through it at the current level, repeat.  The class variant collapses
//! flows that share one exact resource path into a single entry whose
//! integer weight is its member count.  Because the per-resource unfrozen
//! counts it produces are the same integers the per-flow variant would
//! compute, every floating-point operation — the `remaining / count`
//! saturation levels, the `delta * count` subtractions, the `0..R` scan
//! order — is identical, and the resulting rates are bit-for-bit equal.
//! That invariant is what lets the event engine be gated bit-identically
//! against the reference engine (see DESIGN.md §14).

use crate::flow::FlowSpec;
use crate::resource::Resource;

/// Numeric slack used when deciding that a flow has finished or a resource
/// has saturated; keeps the event loop robust against floating-point drift.
pub(crate) const EPS: f64 = 1e-9;

/// One equivalence class of flows sharing an exact resource path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClassState {
    /// Index of a representative flow whose path defines the class.
    pub(crate) rep: usize,
    /// Number of active member flows (the class weight); 0 while inactive.
    pub(crate) weight: usize,
    /// Scratch: frozen at the current fill level.
    pub(crate) frozen: bool,
    /// Output: the max-min fair rate of every member flow.
    pub(crate) rate: f64,
}

/// Progressive filling over individual flows.  Writes the max-min fair rate
/// of every flow in `active` into `rates`.
pub(crate) fn max_min_flow_rates(
    resources: &[Resource],
    flows: &[FlowSpec],
    active: &[usize],
    rates: &mut [f64],
    frozen: &mut [bool],
    unfrozen_count: &mut [usize],
    res_remaining: &mut [f64],
) {
    for r in 0..resources.len() {
        unfrozen_count[r] = 0;
        res_remaining[r] = resources[r].capacity;
    }
    for &i in active {
        frozen[i] = false;
        rates[i] = 0.0;
        for r in &flows[i].path {
            unfrozen_count[r.0] += 1;
        }
    }

    let mut level = 0.0f64;
    let mut left = active.len();
    while left > 0 {
        // The resource that saturates first as the fill level rises.
        let mut best_r = usize::MAX;
        let mut best_level = f64::INFINITY;
        for r in 0..resources.len() {
            if unfrozen_count[r] > 0 {
                let sat = level + res_remaining[r] / unfrozen_count[r] as f64;
                if sat < best_level {
                    best_level = sat;
                    best_r = r;
                }
            }
        }
        debug_assert!(best_r != usize::MAX, "active flows but no loaded resource");

        let delta = best_level - level;
        for r in 0..resources.len() {
            if unfrozen_count[r] > 0 {
                res_remaining[r] -= delta * unfrozen_count[r] as f64;
            }
        }
        level = best_level;

        // Freeze every unfrozen flow through a saturated resource.  The
        // chosen resource is saturated by construction; floating-point
        // drift can saturate others in the same step, handle them too.
        for &i in active {
            if frozen[i] {
                continue;
            }
            let hits_saturated = flows[i]
                .path
                .iter()
                .any(|r| r.0 == best_r || res_remaining[r.0] <= EPS * resources[r.0].capacity);
            if hits_saturated {
                frozen[i] = true;
                rates[i] = level;
                left -= 1;
                for r in &flows[i].path {
                    unfrozen_count[r.0] -= 1;
                }
            }
        }
    }
}

/// Progressive filling over flow classes.  `active` lists indices into
/// `classes` whose `weight` has been set to the live member count; on
/// return each listed class's `rate` is the max-min fair rate of each of
/// its members.
///
/// The freeze condition depends only on a class's path, so within one fill
/// level every member of a class freezes together — which is why a single
/// weighted entry is exact, not an approximation.
pub(crate) fn fill_class_rates(
    resources: &[Resource],
    flows: &[FlowSpec],
    classes: &mut [ClassState],
    active: &[usize],
    unfrozen_count: &mut [usize],
    res_remaining: &mut [f64],
) {
    for r in 0..resources.len() {
        unfrozen_count[r] = 0;
        res_remaining[r] = resources[r].capacity;
    }
    for &c in active {
        let cls = &mut classes[c];
        cls.frozen = false;
        cls.rate = 0.0;
        for r in &flows[cls.rep].path {
            unfrozen_count[r.0] += cls.weight;
        }
    }

    let mut level = 0.0f64;
    let mut left = active.len();
    while left > 0 {
        let mut best_r = usize::MAX;
        let mut best_level = f64::INFINITY;
        for r in 0..resources.len() {
            if unfrozen_count[r] > 0 {
                let sat = level + res_remaining[r] / unfrozen_count[r] as f64;
                if sat < best_level {
                    best_level = sat;
                    best_r = r;
                }
            }
        }
        debug_assert!(best_r != usize::MAX, "active classes but no loaded resource");

        let delta = best_level - level;
        for r in 0..resources.len() {
            if unfrozen_count[r] > 0 {
                res_remaining[r] -= delta * unfrozen_count[r] as f64;
            }
        }
        level = best_level;

        for &c in active {
            if classes[c].frozen {
                continue;
            }
            let hits_saturated = flows[classes[c].rep]
                .path
                .iter()
                .any(|r| r.0 == best_r || res_remaining[r.0] <= EPS * resources[r.0].capacity);
            if hits_saturated {
                let cls = &mut classes[c];
                cls.frozen = true;
                cls.rate = level;
                left -= 1;
                for r in &flows[cls.rep].path {
                    unfrozen_count[r.0] -= cls.weight;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceId;
    use crate::rng::SplitMix64;

    fn resources(caps: &[f64]) -> Vec<Resource> {
        caps.iter()
            .enumerate()
            .map(|(i, &c)| Resource::new(format!("r{i}"), c).unwrap())
            .collect()
    }

    fn flow(path: &[usize]) -> FlowSpec {
        let mut f = FlowSpec::new(1.0);
        for &r in path {
            f = f.through(ResourceId(r));
        }
        f
    }

    /// Run both variants (flows as singleton classes) and demand bit-equal
    /// rates.
    fn assert_variants_agree(res: &[Resource], flows: &[FlowSpec]) {
        let n = flows.len();
        let active: Vec<usize> = (0..n).collect();
        let mut rates = vec![0.0; n];
        let mut frozen = vec![false; n];
        let mut uc = vec![0usize; res.len()];
        let mut rem = vec![0.0; res.len()];
        max_min_flow_rates(res, flows, &active, &mut rates, &mut frozen, &mut uc, &mut rem);

        let mut classes: Vec<ClassState> = (0..n)
            .map(|i| ClassState { rep: i, weight: 1, frozen: false, rate: 0.0 })
            .collect();
        fill_class_rates(res, flows, &mut classes, &active, &mut uc, &mut rem);

        for i in 0..n {
            assert_eq!(
                rates[i].to_bits(),
                classes[i].rate.to_bits(),
                "flow {i}: per-flow rate {} vs class rate {}",
                rates[i],
                classes[i].rate
            );
        }
    }

    #[test]
    fn singleton_classes_match_flows_on_bottleneck_example() {
        let res = resources(&[100.0, 50.0]);
        let flows = vec![flow(&[0]), flow(&[1]), flow(&[0, 1])];
        assert_variants_agree(&res, &flows);
    }

    #[test]
    fn singleton_classes_match_flows_on_equal_rate_ties() {
        // Two identical-capacity resources: the best-level scan ties and the
        // lowest-index resource must win in both variants.
        let res = resources(&[10.0, 10.0]);
        let flows = vec![flow(&[0]), flow(&[1]), flow(&[0]), flow(&[1])];
        assert_variants_agree(&res, &flows);
    }

    #[test]
    fn singleton_classes_match_flows_near_saturation() {
        // Capacities chosen so `remaining / count` leaves residuals within a
        // few ulps of the EPS freeze threshold.
        let res = resources(&[1.0, 1.0 / 3.0, 1e-9]);
        let flows = vec![flow(&[0, 1]), flow(&[0, 1]), flow(&[0, 2]), flow(&[1])];
        assert_variants_agree(&res, &flows);
    }

    #[test]
    fn singleton_classes_match_flows_on_random_topologies() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for _ in 0..50 {
            let nr = 1 + (rng.next_u64() % 5) as usize;
            let caps: Vec<f64> = (0..nr)
                .map(|_| 1.0 + (rng.next_u64() % 1000) as f64 / 7.0)
                .collect();
            let res = resources(&caps);
            let nf = 1 + (rng.next_u64() % 12) as usize;
            let flows: Vec<FlowSpec> = (0..nf)
                .map(|_| {
                    let hops = 1 + (rng.next_u64() % nr as u64) as usize;
                    let path: Vec<usize> =
                        (0..hops).map(|_| (rng.next_u64() % nr as u64) as usize).collect();
                    flow(&path)
                })
                .collect();
            assert_variants_agree(&res, &flows);
        }
    }

    #[test]
    fn weighted_class_equals_duplicated_flows() {
        let res = resources(&[100.0, 60.0]);
        // Five clones of path [0,1] and two of path [0].
        let mut dup_flows = Vec::new();
        for _ in 0..5 {
            dup_flows.push(flow(&[0, 1]));
        }
        for _ in 0..2 {
            dup_flows.push(flow(&[0]));
        }
        let active: Vec<usize> = (0..dup_flows.len()).collect();
        let mut rates = vec![0.0; dup_flows.len()];
        let mut frozen = vec![false; dup_flows.len()];
        let mut uc = vec![0usize; res.len()];
        let mut rem = vec![0.0; res.len()];
        max_min_flow_rates(&res, &dup_flows, &active, &mut rates, &mut frozen, &mut uc, &mut rem);

        // The same workload as two weighted classes over representative flows.
        let reps = vec![flow(&[0, 1]), flow(&[0])];
        let mut classes = vec![
            ClassState { rep: 0, weight: 5, frozen: false, rate: 0.0 },
            ClassState { rep: 1, weight: 2, frozen: false, rate: 0.0 },
        ];
        fill_class_rates(&res, &reps, &mut classes, &[0, 1], &mut uc, &mut rem);

        assert_eq!(rates[0].to_bits(), classes[0].rate.to_bits());
        assert_eq!(rates[6].to_bits(), classes[1].rate.to_bits());
    }
}
