//! Capacity-limited resources (NICs, disks, buses) shared by flows.

use crate::error::CloudSimError;

/// Identifier of a resource inside one [`crate::engine::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild an id from a raw index.  Only meaningful for indices obtained
    /// from [`Self::index`] against the same simulation; used by report
    /// consumers that store indices instead of ids.
    pub fn from_index(i: usize) -> Self {
        ResourceId(i)
    }
}

/// A resource with a fixed service capacity in bytes/second.
///
/// Resources are pure capacity pools: the engine divides each resource's
/// capacity among the flows traversing it with max-min fairness.  A NIC, a
/// disk, a RAID array, and a memory bus are all just resources with
/// different capacities.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name, used in reports and error messages.
    pub name: String,
    /// Service capacity in bytes/second.
    pub capacity: f64,
}

impl Resource {
    /// Create a resource, validating the capacity.
    ///
    /// Served-byte accounting lives in [`crate::engine::RunReport`] (the
    /// engine accumulates per-resource volume into run-scoped scratch so a
    /// `Simulation` can be run repeatedly without mutating its resources).
    pub fn new(name: impl Into<String>, capacity: f64) -> Result<Self, CloudSimError> {
        let name = name.into();
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(CloudSimError::InvalidCapacity { name, capacity });
        }
        Ok(Self { name, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_capacities() {
        assert!(Resource::new("x", 0.0).is_err());
        assert!(Resource::new("x", -5.0).is_err());
        assert!(Resource::new("x", f64::NAN).is_err());
        assert!(Resource::new("x", f64::INFINITY).is_err());
    }

    #[test]
    fn accepts_positive_capacity() {
        let r = Resource::new("nic", 1.25e9).unwrap();
        assert_eq!(r.capacity, 1.25e9);
    }
}
