//! # acic-cloudsim — a flow-level cloud platform simulator
//!
//! This crate is the *substrate* of the ACIC reproduction: a deterministic,
//! flow-level discrete-event simulator of an EC2-Cluster-Compute-style cloud
//! circa 2012/2013.  The original paper ran its training (IOR) and its
//! evaluation applications on real Amazon EC2 CCIs; we do not have that
//! testbed, so every "run on the cloud" in this repository is executed here
//! instead.
//!
//! The simulator models:
//!
//! * **Instances** ([`instance::InstanceType`]): `cc1.4xlarge` and
//!   `cc2.8xlarge` with 2012-era core counts, NIC speeds, local
//!   ("ephemeral") disk complements, and hourly prices.
//! * **Storage devices** ([`device`]): EBS volumes (network-attached, more
//!   variable), local ephemeral disks, and SSDs, each with sequential
//!   bandwidth, per-operation latency, and a multi-tenant jitter model.
//! * **Software RAID-0** ([`raid`]): aggregation of several devices into one
//!   logical block device, as cloud HPC users commonly configure.
//! * **The network fabric** ([`network`]): one full-duplex 10 GbE NIC per
//!   instance plus an intra-instance memory bus for loopback traffic.
//! * **Flows** ([`flow`], [`engine`]): data transfers that traverse a path
//!   of capacity-limited resources.  Concurrent flows share resources with
//!   *max-min fairness* (progressive filling), and the engine advances time
//!   from one flow completion/activation to the next.  Two cores implement
//!   the model: the default event-driven core ([`events`], [`sharing`]) and
//!   the reference per-flow oracle it is gated bit-identically against
//!   (`ACIC_SIM=reference`); per-run state lives in a reusable
//!   [`arena::SimArena`] so campaign sweeps allocate nothing in steady
//!   state.
//! * **Pricing** ([`pricing`]): the paper's equation (1)
//!   (`cost = time × instances × unit price`), plus hourly-granularity
//!   billing and EBS volume charges.
//!
//! Determinism: every run is parameterized by an explicit `u64` seed consumed
//! through [`rng::SplitMix64`]; there is no ambient randomness and no wall
//! clock anywhere in the crate.
//!
//! ## Quick example
//!
//! ```
//! use acic_cloudsim::engine::Simulation;
//! use acic_cloudsim::flow::FlowSpec;
//!
//! let mut sim = Simulation::new();
//! let link = sim.add_resource("shared-link", 100.0); // 100 B/s
//! // Two flows share the link: each gets 50 B/s, so 500 B finish at t=10.
//! let a = sim.add_flow(FlowSpec::new(500.0).through(link));
//! let b = sim.add_flow(FlowSpec::new(500.0).through(link));
//! let report = sim.run().unwrap();
//! assert!((report.finish_time(a).unwrap() - 10.0).abs() < 1e-9);
//! assert!((report.finish_time(b).unwrap() - 10.0).abs() < 1e-9);
//! ```

pub mod arena;
pub mod cluster;
pub mod device;
pub mod engine;
pub mod error;
pub mod events;
pub mod flow;
pub mod instance;
pub mod network;
pub mod pricing;
pub mod raid;
pub mod resource;
pub mod rng;
pub mod sharing;
pub mod units;

pub use arena::{ArenaStats, SimArena};
pub use cluster::{Cluster, ClusterPool, ClusterSpec, NodeRole, Placement};
pub use device::{DeviceKind, DeviceProfile};
pub use engine::{set_engine_override, RunReport, RunStats, SimEngine, Simulation};
pub use error::CloudSimError;
pub use flow::{FlowId, FlowSpec};
pub use instance::InstanceType;
pub use pricing::{CostModel, PriceSheet};
pub use resource::ResourceId;
pub use rng::SplitMix64;
