//! The simulation engine: max-min fair bandwidth sharing advanced from one
//! flow completion/activation event to the next.
//!
//! The engine implements classic *flow-level* network simulation: instead of
//! packets, each transfer is a fluid flow, and at any instant the rate
//! vector is the max-min fair allocation given every active flow's resource
//! path (progressive filling, cf. Bertsekas & Gallager).  Events are flow
//! activations and completions; between events rates are constant, so time
//! can jump directly to the next event.  This is accurate for bulk HPC I/O
//! (large transfers, long-lived contention) and orders of magnitude faster
//! than packet simulation, which is what lets the ACIC harness exhaustively
//! sweep hundreds of configurations per figure.

use crate::error::CloudSimError;
use crate::flow::{FlowId, FlowSpec};
use crate::resource::{Resource, ResourceId};

/// Numeric slack used when deciding that a flow has finished or a resource
/// has saturated; keeps the event loop robust against floating-point drift.
const EPS: f64 = 1e-9;

/// A simulation under construction: resources plus flow specs.
#[derive(Debug, Default)]
pub struct Simulation {
    resources: Vec<Resource>,
    flows: Vec<FlowSpec>,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    finish: Vec<f64>,
    served: Vec<f64>,
    makespan: f64,
    labels: Vec<Option<String>>,
}

impl RunReport {
    /// Finish time of a flow, if it completed.
    pub fn finish_time(&self, f: FlowId) -> Option<f64> {
        self.finish.get(f.0).copied().filter(|t| t.is_finite())
    }

    /// The completion time of the last flow (0.0 for an empty run).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Bytes served by resource `r` over the whole run.
    pub fn resource_served(&self, r: ResourceId) -> f64 {
        self.served[r.0]
    }

    /// Iterate `(flow, finish_time, label)` for all flows.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, f64, Option<&str>)> + '_ {
        self.finish
            .iter()
            .enumerate()
            .map(|(i, &t)| (FlowId(i), t, self.labels[i].as_deref()))
    }
}

impl Simulation {
    /// An empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a resource with the given capacity (bytes/second).
    ///
    /// # Panics
    /// Panics if the capacity is not finite and positive; resource creation
    /// is programmer-controlled (capacities come from device tables), so an
    /// invalid one is a bug, not an input error.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        let r = Resource::new(name, capacity).expect("invalid resource capacity");
        self.resources.push(r);
        ResourceId(self.resources.len() - 1)
    }

    /// Fallible variant of [`Self::add_resource`] for capacities that come
    /// from user-controlled data.
    pub fn try_add_resource(
        &mut self,
        name: impl Into<String>,
        capacity: f64,
    ) -> Result<ResourceId, CloudSimError> {
        let r = Resource::new(name, capacity)?;
        self.resources.push(r);
        Ok(ResourceId(self.resources.len() - 1))
    }

    /// Queue a flow for execution. Validation happens at [`Self::run`].
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.flows.push(spec);
        FlowId(self.flows.len() - 1)
    }

    /// Number of resources added so far.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of flows added so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Validate all flows against the declared resources.
    fn validate(&self) -> Result<(), CloudSimError> {
        for (i, f) in self.flows.iter().enumerate() {
            if !(f.bytes.is_finite() && f.bytes > 0.0) {
                return Err(CloudSimError::InvalidFlowSize { bytes: f.bytes });
            }
            if f.path.is_empty() {
                return Err(CloudSimError::PathlessFlow { flow: i });
            }
            for r in &f.path {
                if r.0 >= self.resources.len() {
                    return Err(CloudSimError::UnknownResource { resource: r.0 });
                }
            }
        }
        Ok(())
    }

    /// Run the simulation to completion and report per-flow finish times.
    pub fn run(mut self) -> Result<RunReport, CloudSimError> {
        self.validate()?;
        let n = self.flows.len();
        let mut remaining: Vec<f64> = self.flows.iter().map(|f| f.bytes).collect();
        let mut finish = vec![f64::INFINITY; n];

        // Pending flows sorted by activation time, latest first so we can pop.
        let mut pending: Vec<usize> = (0..n).collect();
        pending.sort_by(|&a, &b| {
            self.flows[b]
                .activation_time()
                .total_cmp(&self.flows[a].activation_time())
        });
        let mut active: Vec<usize> = Vec::new();
        let mut t = 0.0f64;
        let mut makespan = 0.0f64;

        // Scratch buffers reused across events (hot loop).
        let mut rates = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut unfrozen_count = vec![0usize; self.resources.len()];
        let mut res_remaining = vec![0.0f64; self.resources.len()];

        loop {
            // Activate every pending flow whose activation time has come.
            while let Some(&i) = pending.last() {
                if self.flows[i].activation_time() <= t + EPS {
                    pending.pop();
                    active.push(i);
                } else {
                    break;
                }
            }

            if active.is_empty() {
                match pending.last() {
                    Some(&i) => {
                        // Idle gap: jump to the next activation.
                        t = self.flows[i].activation_time();
                        continue;
                    }
                    None => break, // all done
                }
            }

            self.max_min_rates(
                &active,
                &mut rates,
                &mut frozen,
                &mut unfrozen_count,
                &mut res_remaining,
            );

            // Time to the next completion among active flows.
            let mut dt_complete = f64::INFINITY;
            for &i in &active {
                if rates[i] > 0.0 {
                    dt_complete = dt_complete.min(remaining[i] / rates[i]);
                }
            }
            // Time to the next activation.
            let dt_activate = pending
                .last()
                .map(|&i| self.flows[i].activation_time() - t)
                .unwrap_or(f64::INFINITY);

            let dt = dt_complete.min(dt_activate);
            if !dt.is_finite() {
                return Err(CloudSimError::Stalled { time: t, active: active.len() });
            }
            let dt = dt.max(0.0);

            // Advance: drain bytes and account served volume per resource.
            for &i in &active {
                let moved = rates[i] * dt;
                remaining[i] -= moved;
                for r in &self.flows[i].path {
                    self.resources[r.0].served += moved;
                }
            }
            t += dt;

            // Retire completed flows.
            active.retain(|&i| {
                if remaining[i] <= EPS * self.flows[i].bytes.max(1.0) {
                    finish[i] = t;
                    makespan = makespan.max(t);
                    false
                } else {
                    true
                }
            });
        }

        Ok(RunReport {
            finish,
            served: self.resources.iter().map(|r| r.served).collect(),
            makespan,
            labels: self.flows.into_iter().map(|f| f.label).collect(),
        })
    }

    /// Progressive filling: raise all unfrozen flows' rates uniformly until a
    /// resource saturates, freeze its flows, repeat.  Writes the max-min fair
    /// rate of every active flow into `rates`.
    fn max_min_rates(
        &self,
        active: &[usize],
        rates: &mut [f64],
        frozen: &mut [bool],
        unfrozen_count: &mut [usize],
        res_remaining: &mut [f64],
    ) {
        for r in 0..self.resources.len() {
            unfrozen_count[r] = 0;
            res_remaining[r] = self.resources[r].capacity;
        }
        for &i in active {
            frozen[i] = false;
            rates[i] = 0.0;
            for r in &self.flows[i].path {
                unfrozen_count[r.0] += 1;
            }
        }

        let mut level = 0.0f64;
        let mut left = active.len();
        while left > 0 {
            // The resource that saturates first as the fill level rises.
            let mut best_r = usize::MAX;
            let mut best_level = f64::INFINITY;
            for r in 0..self.resources.len() {
                if unfrozen_count[r] > 0 {
                    let sat = level + res_remaining[r] / unfrozen_count[r] as f64;
                    if sat < best_level {
                        best_level = sat;
                        best_r = r;
                    }
                }
            }
            debug_assert!(best_r != usize::MAX, "active flows but no loaded resource");

            let delta = best_level - level;
            for r in 0..self.resources.len() {
                if unfrozen_count[r] > 0 {
                    res_remaining[r] -= delta * unfrozen_count[r] as f64;
                }
            }
            level = best_level;

            // Freeze every unfrozen flow through a saturated resource.  The
            // chosen resource is saturated by construction; floating-point
            // drift can saturate others in the same step, handle them too.
            for &i in active {
                if frozen[i] {
                    continue;
                }
                let hits_saturated = self.flows[i]
                    .path
                    .iter()
                    .any(|r| r.0 == best_r || res_remaining[r.0] <= EPS * self.resources[r.0].capacity);
                if hits_saturated {
                    frozen[i] = true;
                    rates[i] = level;
                    left -= 1;
                    for r in &self.flows[i].path {
                        unfrozen_count[r.0] -= 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_single_resource() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let f = sim.add_flow(FlowSpec::new(1000.0).through(r));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 10.0));
        assert!(close(rep.makespan(), 10.0));
        assert!(close(rep.resource_served(r), 1000.0));
    }

    #[test]
    fn equal_flows_share_fairly() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let a = sim.add_flow(FlowSpec::new(500.0).through(r));
        let b = sim.add_flow(FlowSpec::new(500.0).through(r));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(a).unwrap(), 10.0));
        assert!(close(rep.finish_time(b).unwrap(), 10.0));
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let short = sim.add_flow(FlowSpec::new(100.0).through(r));
        let long = sim.add_flow(FlowSpec::new(1000.0).through(r));
        let rep = sim.run().unwrap();
        // Share 50/50 until t=2 (short done, 100 bytes each moved), then the
        // long flow gets the full 100 B/s for its remaining 900 bytes.
        assert!(close(rep.finish_time(short).unwrap(), 2.0));
        assert!(close(rep.finish_time(long).unwrap(), 2.0 + 9.0));
    }

    #[test]
    fn max_min_respects_multiple_bottlenecks() {
        // Classic 3-flow example: flows A (link1), B (link2), C (link1+link2).
        // link1 cap 100, link2 cap 50. Max-min: C and B bottleneck on link2
        // at 25 each; A then gets 75 on link1.
        let mut sim = Simulation::new();
        let l1 = sim.add_resource("l1", 100.0);
        let l2 = sim.add_resource("l2", 50.0);
        let a = sim.add_flow(FlowSpec::new(75.0).through(l1));
        let b = sim.add_flow(FlowSpec::new(25.0).through(l2));
        let c = sim.add_flow(FlowSpec::new(25.0).through(l1).through(l2));
        let rep = sim.run().unwrap();
        // All three should finish at exactly t=1 under the allocation above.
        assert!(close(rep.finish_time(a).unwrap(), 1.0));
        assert!(close(rep.finish_time(b).unwrap(), 1.0));
        assert!(close(rep.finish_time(c).unwrap(), 1.0));
    }

    #[test]
    fn latency_delays_activation() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let f = sim.add_flow(FlowSpec::new(100.0).through(r).with_latency(5.0));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 6.0));
    }

    #[test]
    fn release_time_creates_idle_gap() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let f = sim.add_flow(FlowSpec::new(100.0).through(r).released_at(10.0));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 11.0));
    }

    #[test]
    fn staggered_flows_contend_only_while_overlapping() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let a = sim.add_flow(FlowSpec::new(1000.0).through(r));
        let b = sim.add_flow(FlowSpec::new(100.0).through(r).released_at(2.0));
        let rep = sim.run().unwrap();
        // a alone for 2s (200 B done). Then both at 50 B/s; b needs 2s
        // (done t=4, a has 800-100=700 left at t=4), a finishes at 4+7=11.
        assert!(close(rep.finish_time(b).unwrap(), 4.0));
        assert!(close(rep.finish_time(a).unwrap(), 11.0));
    }

    #[test]
    fn empty_simulation_finishes_instantly() {
        let sim = Simulation::new();
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan(), 0.0);
    }

    #[test]
    fn pathless_flow_is_rejected() {
        let mut sim = Simulation::new();
        sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(100.0));
        assert!(matches!(sim.run(), Err(CloudSimError::PathlessFlow { flow: 0 })));
    }

    #[test]
    fn nonpositive_bytes_rejected() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(0.0).through(r));
        assert!(matches!(sim.run(), Err(CloudSimError::InvalidFlowSize { .. })));
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut sim = Simulation::new();
        sim.add_flow(FlowSpec::new(10.0).through(ResourceId(5)));
        assert!(matches!(sim.run(), Err(CloudSimError::UnknownResource { resource: 5 })));
    }

    #[test]
    fn try_add_resource_propagates_capacity_errors() {
        let mut sim = Simulation::new();
        assert!(sim.try_add_resource("bad", -1.0).is_err());
        assert!(sim.try_add_resource("good", 1.0).is_ok());
    }

    #[test]
    fn two_hop_flow_is_limited_by_slowest_hop() {
        let mut sim = Simulation::new();
        let fast = sim.add_resource("fast", 1000.0);
        let slow = sim.add_resource("slow", 10.0);
        let f = sim.add_flow(FlowSpec::new(100.0).through(fast).through(slow));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 10.0));
    }

    #[test]
    fn served_bytes_accumulate_per_resource() {
        let mut sim = Simulation::new();
        let l1 = sim.add_resource("l1", 100.0);
        let l2 = sim.add_resource("l2", 100.0);
        let _a = sim.add_flow(FlowSpec::new(300.0).through(l1).through(l2));
        let _b = sim.add_flow(FlowSpec::new(200.0).through(l1));
        let rep = sim.run().unwrap();
        assert!(close(rep.resource_served(ResourceId(0)), 500.0));
        assert!(close(rep.resource_served(ResourceId(1)), 300.0));
    }

    #[test]
    fn labels_survive_to_report() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 10.0);
        sim.add_flow(FlowSpec::new(10.0).through(r).labeled("hello"));
        let rep = sim.run().unwrap();
        let labels: Vec<_> = rep.flows().map(|(_, _, l)| l.map(str::to_owned)).collect();
        assert_eq!(labels, vec![Some("hello".to_owned())]);
    }

    #[test]
    fn many_flows_scale_and_stay_fair() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 1000.0);
        let ids: Vec<_> = (0..100)
            .map(|_| sim.add_flow(FlowSpec::new(100.0).through(r)))
            .collect();
        let rep = sim.run().unwrap();
        // 100 identical flows over 1000 B/s: each at 10 B/s, finish at t=10.
        for f in ids {
            assert!(close(rep.finish_time(f).unwrap(), 10.0));
        }
    }
}
