//! The simulation engine: max-min fair bandwidth sharing advanced from one
//! flow completion/activation event to the next.
//!
//! The engine implements classic *flow-level* network simulation: instead of
//! packets, each transfer is a fluid flow, and at any instant the rate
//! vector is the max-min fair allocation given every active flow's resource
//! path (progressive filling, cf. Bertsekas & Gallager).  Events are flow
//! activations and completions; between events rates are constant, so time
//! can jump directly to the next event.  This is accurate for bulk HPC I/O
//! (large transfers, long-lived contention) and orders of magnitude faster
//! than packet simulation, which is what lets the ACIC harness exhaustively
//! sweep hundreds of configurations per figure.
//!
//! Two engines implement that model:
//!
//! * [`SimEngine::Event`] (default) — the event-driven core in
//!   [`crate::events`]: a binary-heap activation queue over groups of
//!   identical flows with class-level fair sharing.  Per-event cost is
//!   independent of the raw flow count.
//! * [`SimEngine::Reference`] — the original per-flow progressive-filling
//!   loop, kept verbatim as the oracle the event core is gated against
//!   (bit-identical finish times and makespan; served bytes ≤1e-9
//!   relative).  Select it end-to-end with `ACIC_SIM=reference`.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::arena::SimArena;
use crate::error::CloudSimError;
use crate::flow::{FlowId, FlowSpec};
use crate::resource::{Resource, ResourceId};
use crate::sharing::{self, EPS};

/// Which simulator core executes a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngine {
    /// Event-driven core: grouped flows, class-level filling, activation
    /// heap (the fast path and the default).
    Event,
    /// The original per-flow progressive-filling loop, kept as the oracle.
    Reference,
}

/// Process-wide engine override; takes precedence over `ACIC_SIM` but not
/// over a per-simulation [`Simulation::set_engine`] choice.
/// 0 = none, 1 = event, 2 = reference.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force every simulation in this process onto one engine (or clear the
/// override with `None`).  Used by campaign tooling and tests that need to
/// flip engines without re-spawning or racing on the environment.
pub fn set_engine_override(engine: Option<SimEngine>) {
    let v = match engine {
        None => 0,
        Some(SimEngine::Event) => 1,
        Some(SimEngine::Reference) => 2,
    };
    ENGINE_OVERRIDE.store(v, Ordering::Relaxed);
}

impl SimEngine {
    /// Engine selected by the `ACIC_SIM` environment variable:
    /// `reference` / `oracle` (case-insensitive) pick the oracle; anything
    /// else, or unset, the event core.
    pub fn from_env() -> SimEngine {
        match std::env::var("ACIC_SIM") {
            Ok(v) if v.eq_ignore_ascii_case("reference") || v.eq_ignore_ascii_case("oracle") => {
                SimEngine::Reference
            }
            _ => SimEngine::Event,
        }
    }
}

/// Resolve the engine for one run: per-simulation choice, then process
/// override, then environment.
fn resolve_engine(pref: Option<SimEngine>) -> SimEngine {
    if let Some(e) = pref {
        return e;
    }
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => SimEngine::Event,
        2 => SimEngine::Reference,
        _ => SimEngine::from_env(),
    }
}

/// A simulation under construction: resources plus flow specs.
#[derive(Debug)]
pub struct Simulation {
    pub(crate) resources: Vec<Resource>,
    pub(crate) flows: Vec<FlowSpec>,
    /// Per-simulation engine choice; `None` defers to the process override
    /// and then `ACIC_SIM`.
    engine: Option<SimEngine>,
    /// Whether [`Self::label_flow`] materialises labels; pooled campaign
    /// simulations skip them to stay allocation-free.
    record_labels: bool,
    /// Recycled name/label strings (pooled mode).
    name_pool: Vec<String>,
    /// Recycled path vectors (pooled mode).
    path_pool: Vec<Vec<ResourceId>>,
    /// Allocations forced by an empty pool; harvested by
    /// [`SimArena::reclaim`].
    misses: u64,
}

impl Default for Simulation {
    fn default() -> Self {
        Simulation {
            resources: Vec::new(),
            flows: Vec::new(),
            engine: None,
            record_labels: true,
            name_pool: Vec::new(),
            path_pool: Vec::new(),
            misses: 0,
        }
    }
}

/// Makespan and event count of one completed run; per-flow finish times
/// and per-resource served bytes stay in the [`SimArena`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Completion time of the last flow (0.0 for an empty run).
    pub makespan: f64,
    /// Number of rate-recomputation epochs the engine stepped through;
    /// identical across engines for the same workload (the trajectory is
    /// bit-identical), so `events / elapsed` compares engine throughput on
    /// equal footing.
    pub events: u64,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    finish: Vec<f64>,
    served: Vec<f64>,
    makespan: f64,
    events: u64,
    labels: Vec<Option<String>>,
}

impl RunReport {
    /// Finish time of a flow, if it completed.
    pub fn finish_time(&self, f: FlowId) -> Option<f64> {
        self.finish.get(f.0).copied().filter(|t| t.is_finite())
    }

    /// The completion time of the last flow (0.0 for an empty run).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Number of rate-recomputation epochs the run stepped through.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes served by resource `r` over the whole run.
    pub fn resource_served(&self, r: ResourceId) -> f64 {
        self.served[r.0]
    }

    /// Iterate `(flow, finish_time, label)` for all flows.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, f64, Option<&str>)> + '_ {
        self.finish
            .iter()
            .enumerate()
            .map(|(i, &t)| (FlowId(i), t, self.labels[i].as_deref()))
    }
}

impl Simulation {
    /// An empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty simulation backed by recycled storage (see
    /// [`SimArena::simulation`]); skips label recording.
    pub(crate) fn pooled(
        resources: Vec<Resource>,
        flows: Vec<FlowSpec>,
        name_pool: Vec<String>,
        path_pool: Vec<Vec<ResourceId>>,
    ) -> Self {
        debug_assert!(resources.is_empty() && flows.is_empty());
        Simulation {
            resources,
            flows,
            engine: None,
            record_labels: false,
            name_pool,
            path_pool,
            misses: 0,
        }
    }

    /// Dismantle the simulation into its pools, recycling every name,
    /// label, and path allocation.
    pub(crate) fn into_pools(
        mut self,
    ) -> (Vec<Resource>, Vec<FlowSpec>, Vec<String>, Vec<Vec<ResourceId>>, u64) {
        for r in self.resources.drain(..) {
            let mut name = r.name;
            name.clear();
            self.name_pool.push(name);
        }
        for f in self.flows.drain(..) {
            let mut path = f.path;
            path.clear();
            self.path_pool.push(path);
            if let Some(mut label) = f.label {
                label.clear();
                self.name_pool.push(label);
            }
        }
        (self.resources, self.flows, self.name_pool, self.path_pool, self.misses)
    }

    /// Pin this simulation to one engine (`None` restores the default
    /// resolution: process override, then `ACIC_SIM`, then the event core).
    pub fn set_engine(&mut self, engine: Option<SimEngine>) {
        self.engine = engine;
    }

    /// Builder form of [`Self::set_engine`].
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Add a resource with the given capacity (bytes/second).
    ///
    /// # Panics
    /// Panics if the capacity is not finite and positive; resource creation
    /// is programmer-controlled (capacities come from device tables), so an
    /// invalid one is a bug, not an input error.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        let r = Resource::new(name, capacity).expect("invalid resource capacity");
        self.resources.push(r);
        ResourceId(self.resources.len() - 1)
    }

    /// Like [`Self::add_resource`] but formats the name into a recycled
    /// string, so pooled campaign runs never allocate for names.
    pub fn add_resource_fmt(&mut self, args: fmt::Arguments<'_>, capacity: f64) -> ResourceId {
        use fmt::Write as _;
        let mut name = self.name_pool.pop().unwrap_or_else(|| {
            self.misses += 1;
            String::new()
        });
        name.clear();
        name.write_fmt(args).expect("writing to a String cannot fail");
        let r = Resource::new(name, capacity).expect("invalid resource capacity");
        self.resources.push(r);
        ResourceId(self.resources.len() - 1)
    }

    /// Fallible variant of [`Self::add_resource`] for capacities that come
    /// from user-controlled data.
    pub fn try_add_resource(
        &mut self,
        name: impl Into<String>,
        capacity: f64,
    ) -> Result<ResourceId, CloudSimError> {
        let r = Resource::new(name, capacity)?;
        self.resources.push(r);
        Ok(ResourceId(self.resources.len() - 1))
    }

    /// Queue a flow for execution. Validation happens at [`Self::run`].
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.flows.push(spec);
        FlowId(self.flows.len() - 1)
    }

    /// Queue a flow from raw bytes and a borrowed path; the path is copied
    /// into recycled storage so campaign planners allocate nothing per
    /// flow.  Release time and latency default to zero, as for
    /// [`FlowSpec::new`].
    pub fn push_flow(&mut self, bytes: f64, path: &[ResourceId]) -> FlowId {
        let mut p = self.path_pool.pop().unwrap_or_else(|| {
            self.misses += 1;
            Vec::new()
        });
        p.clear();
        p.extend_from_slice(path);
        let mut spec = FlowSpec::new(bytes);
        spec.path = p;
        self.flows.push(spec);
        FlowId(self.flows.len() - 1)
    }

    /// Attach a label to a flow, invoking the closure only when this
    /// simulation records labels; pooled campaign runs skip the formatting
    /// (and its allocation) entirely.
    pub fn label_flow(&mut self, f: FlowId, label: impl FnOnce() -> String) {
        if self.record_labels {
            self.flows[f.0].label = Some(label());
        }
    }

    /// Number of resources added so far.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of flows added so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Validate all flows against the declared resources.
    fn validate(&self) -> Result<(), CloudSimError> {
        for (i, f) in self.flows.iter().enumerate() {
            if !(f.bytes.is_finite() && f.bytes > 0.0) {
                return Err(CloudSimError::InvalidFlowSize { bytes: f.bytes });
            }
            if !(f.release.is_finite()
                && f.release >= 0.0
                && f.latency.is_finite()
                && f.latency >= 0.0)
            {
                return Err(CloudSimError::InvalidFlowTiming {
                    flow: i,
                    release: f.release,
                    latency: f.latency,
                });
            }
            if f.path.is_empty() {
                return Err(CloudSimError::PathlessFlow { flow: i });
            }
            for r in &f.path {
                if r.0 >= self.resources.len() {
                    return Err(CloudSimError::UnknownResource { resource: r.0 });
                }
            }
        }
        Ok(())
    }

    /// Run the simulation to completion and report per-flow finish times.
    pub fn run(self) -> Result<RunReport, CloudSimError> {
        let mut arena = SimArena::new();
        let stats = self.run_makespan_in(&mut arena)?;
        Ok(RunReport {
            finish: std::mem::take(&mut arena.finish),
            served: std::mem::take(&mut arena.served),
            makespan: stats.makespan,
            events: stats.events,
            labels: self.flows.into_iter().map(|f| f.label).collect(),
        })
    }

    /// Run without consuming the simulation, writing per-flow finish times
    /// and per-resource served bytes into `arena` (see
    /// [`SimArena::finish`] / [`SimArena::served`]).
    ///
    /// Taking `&self` lets campaigns and benchmarks re-run one topology
    /// many times — under different engines — without rebuilding it.
    pub fn run_makespan_in(&self, arena: &mut SimArena) -> Result<RunStats, CloudSimError> {
        self.validate()?;
        crate::arena::count_run();
        match resolve_engine(self.engine) {
            SimEngine::Event => crate::events::run_event(self, arena),
            SimEngine::Reference => run_reference(self, arena),
        }
    }
}

/// The oracle: per-flow progressive filling advanced event by event.  This
/// is the original engine loop, unchanged except that its state lives in
/// the arena; the event core in [`crate::events`] is gated against it.
fn run_reference(sim: &Simulation, arena: &mut SimArena) -> Result<RunStats, CloudSimError> {
    let flows = &sim.flows;
    let resources = &sim.resources;
    let n = flows.len();

    let SimArena {
        finish,
        served,
        pending,
        active,
        remaining,
        rates,
        frozen,
        unfrozen_count,
        res_remaining,
        ..
    } = arena;

    finish.clear();
    finish.resize(n, f64::INFINITY);
    served.clear();
    served.resize(resources.len(), 0.0);

    remaining.clear();
    remaining.extend(flows.iter().map(|f| f.bytes));

    // Pending flows sorted by activation time, latest first so we can pop.
    pending.clear();
    pending.extend(0..n);
    pending.sort_by(|&a, &b| flows[b].activation_time().total_cmp(&flows[a].activation_time()));
    active.clear();

    // Scratch buffers reused across events (hot loop).
    rates.clear();
    rates.resize(n, 0.0);
    frozen.clear();
    frozen.resize(n, false);
    unfrozen_count.clear();
    unfrozen_count.resize(resources.len(), 0);
    res_remaining.clear();
    res_remaining.resize(resources.len(), 0.0);

    let mut t = 0.0f64;
    let mut makespan = 0.0f64;
    let mut events = 0u64;

    loop {
        // Activate every pending flow whose activation time has come.
        while let Some(&i) = pending.last() {
            if flows[i].activation_time() <= t + EPS {
                pending.pop();
                active.push(i);
            } else {
                break;
            }
        }

        if active.is_empty() {
            match pending.last() {
                Some(&i) => {
                    // Idle gap: jump to the next activation.
                    t = flows[i].activation_time();
                    continue;
                }
                None => break, // all done
            }
        }

        events += 1;

        sharing::max_min_flow_rates(
            resources,
            flows,
            active,
            rates,
            frozen,
            unfrozen_count,
            res_remaining,
        );

        // Time to the next completion among active flows.
        let mut dt_complete = f64::INFINITY;
        for &i in active.iter() {
            if rates[i] > 0.0 {
                dt_complete = dt_complete.min(remaining[i] / rates[i]);
            }
        }
        // Time to the next activation.
        let dt_activate =
            pending.last().map(|&i| flows[i].activation_time() - t).unwrap_or(f64::INFINITY);

        let dt = dt_complete.min(dt_activate);
        if !dt.is_finite() {
            return Err(CloudSimError::Stalled { time: t, active: active.len() });
        }
        let dt = dt.max(0.0);

        // Advance: drain bytes and account served volume per resource.
        for &i in active.iter() {
            let moved = rates[i] * dt;
            remaining[i] -= moved;
            for r in &flows[i].path {
                served[r.0] += moved;
            }
        }
        t += dt;

        // Retire completed flows.
        active.retain(|&i| {
            if remaining[i] <= EPS * flows[i].bytes.max(1.0) {
                finish[i] = t;
                makespan = makespan.max(t);
                false
            } else {
                true
            }
        });
    }

    Ok(RunStats { makespan, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_single_resource() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let f = sim.add_flow(FlowSpec::new(1000.0).through(r));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 10.0));
        assert!(close(rep.makespan(), 10.0));
        assert!(close(rep.resource_served(r), 1000.0));
    }

    #[test]
    fn equal_flows_share_fairly() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let a = sim.add_flow(FlowSpec::new(500.0).through(r));
        let b = sim.add_flow(FlowSpec::new(500.0).through(r));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(a).unwrap(), 10.0));
        assert!(close(rep.finish_time(b).unwrap(), 10.0));
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let short = sim.add_flow(FlowSpec::new(100.0).through(r));
        let long = sim.add_flow(FlowSpec::new(1000.0).through(r));
        let rep = sim.run().unwrap();
        // Share 50/50 until t=2 (short done, 100 bytes each moved), then the
        // long flow gets the full 100 B/s for its remaining 900 bytes.
        assert!(close(rep.finish_time(short).unwrap(), 2.0));
        assert!(close(rep.finish_time(long).unwrap(), 2.0 + 9.0));
    }

    #[test]
    fn max_min_respects_multiple_bottlenecks() {
        // Classic 3-flow example: flows A (link1), B (link2), C (link1+link2).
        // link1 cap 100, link2 cap 50. Max-min: C and B bottleneck on link2
        // at 25 each; A then gets 75 on link1.
        let mut sim = Simulation::new();
        let l1 = sim.add_resource("l1", 100.0);
        let l2 = sim.add_resource("l2", 50.0);
        let a = sim.add_flow(FlowSpec::new(75.0).through(l1));
        let b = sim.add_flow(FlowSpec::new(25.0).through(l2));
        let c = sim.add_flow(FlowSpec::new(25.0).through(l1).through(l2));
        let rep = sim.run().unwrap();
        // All three should finish at exactly t=1 under the allocation above.
        assert!(close(rep.finish_time(a).unwrap(), 1.0));
        assert!(close(rep.finish_time(b).unwrap(), 1.0));
        assert!(close(rep.finish_time(c).unwrap(), 1.0));
    }

    #[test]
    fn latency_delays_activation() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let f = sim.add_flow(FlowSpec::new(100.0).through(r).with_latency(5.0));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 6.0));
    }

    #[test]
    fn release_time_creates_idle_gap() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let f = sim.add_flow(FlowSpec::new(100.0).through(r).released_at(10.0));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 11.0));
    }

    #[test]
    fn staggered_flows_contend_only_while_overlapping() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        let a = sim.add_flow(FlowSpec::new(1000.0).through(r));
        let b = sim.add_flow(FlowSpec::new(100.0).through(r).released_at(2.0));
        let rep = sim.run().unwrap();
        // a alone for 2s (200 B done). Then both at 50 B/s; b needs 2s
        // (done t=4, a has 800-100=700 left at t=4), a finishes at 4+7=11.
        assert!(close(rep.finish_time(b).unwrap(), 4.0));
        assert!(close(rep.finish_time(a).unwrap(), 11.0));
    }

    #[test]
    fn empty_simulation_finishes_instantly() {
        let sim = Simulation::new();
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan(), 0.0);
    }

    #[test]
    fn pathless_flow_is_rejected() {
        let mut sim = Simulation::new();
        sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(100.0));
        assert!(matches!(sim.run(), Err(CloudSimError::PathlessFlow { flow: 0 })));
    }

    #[test]
    fn nonpositive_bytes_rejected() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(0.0).through(r));
        assert!(matches!(sim.run(), Err(CloudSimError::InvalidFlowSize { .. })));
    }

    #[test]
    fn invalid_timing_rejected() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(10.0).through(r).released_at(f64::NAN));
        assert!(matches!(sim.run(), Err(CloudSimError::InvalidFlowTiming { flow: 0, .. })));

        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(10.0).through(r).with_latency(-2.0));
        assert!(matches!(sim.run(), Err(CloudSimError::InvalidFlowTiming { flow: 0, .. })));

        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(10.0).through(r).released_at(f64::INFINITY));
        assert!(matches!(sim.run(), Err(CloudSimError::InvalidFlowTiming { flow: 0, .. })));
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut sim = Simulation::new();
        sim.add_flow(FlowSpec::new(10.0).through(ResourceId(5)));
        assert!(matches!(sim.run(), Err(CloudSimError::UnknownResource { resource: 5 })));
    }

    #[test]
    fn try_add_resource_propagates_capacity_errors() {
        let mut sim = Simulation::new();
        assert!(sim.try_add_resource("bad", -1.0).is_err());
        assert!(sim.try_add_resource("good", 1.0).is_ok());
    }

    #[test]
    fn two_hop_flow_is_limited_by_slowest_hop() {
        let mut sim = Simulation::new();
        let fast = sim.add_resource("fast", 1000.0);
        let slow = sim.add_resource("slow", 10.0);
        let f = sim.add_flow(FlowSpec::new(100.0).through(fast).through(slow));
        let rep = sim.run().unwrap();
        assert!(close(rep.finish_time(f).unwrap(), 10.0));
    }

    #[test]
    fn served_bytes_accumulate_per_resource() {
        let mut sim = Simulation::new();
        let l1 = sim.add_resource("l1", 100.0);
        let l2 = sim.add_resource("l2", 100.0);
        let _a = sim.add_flow(FlowSpec::new(300.0).through(l1).through(l2));
        let _b = sim.add_flow(FlowSpec::new(200.0).through(l1));
        let rep = sim.run().unwrap();
        assert!(close(rep.resource_served(ResourceId(0)), 500.0));
        assert!(close(rep.resource_served(ResourceId(1)), 300.0));
    }

    #[test]
    fn labels_survive_to_report() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 10.0);
        sim.add_flow(FlowSpec::new(10.0).through(r).labeled("hello"));
        let rep = sim.run().unwrap();
        let labels: Vec<_> = rep.flows().map(|(_, _, l)| l.map(str::to_owned)).collect();
        assert_eq!(labels, vec![Some("hello".to_owned())]);
    }

    #[test]
    fn many_flows_scale_and_stay_fair() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("link", 1000.0);
        let ids: Vec<_> = (0..100)
            .map(|_| sim.add_flow(FlowSpec::new(100.0).through(r)))
            .collect();
        let rep = sim.run().unwrap();
        // 100 identical flows over 1000 B/s: each at 10 B/s, finish at t=10.
        for f in ids {
            assert!(close(rep.finish_time(f).unwrap(), 10.0));
        }
    }

    /// Build one topology under both engines and demand a bit-identical
    /// trajectory: finish times, makespan, event count.
    fn assert_engines_agree(build: impl Fn(&mut Simulation)) {
        let mut reference = Simulation::new().with_engine(SimEngine::Reference);
        build(&mut reference);
        let mut event = Simulation::new().with_engine(SimEngine::Event);
        build(&mut event);
        let n = reference.flow_count();
        let nr = reference.resource_count();
        let ref_rep = reference.run().unwrap();
        let evt_rep = event.run().unwrap();
        assert_eq!(ref_rep.makespan().to_bits(), evt_rep.makespan().to_bits());
        assert_eq!(ref_rep.events(), evt_rep.events());
        for i in 0..n {
            let f = FlowId(i);
            assert_eq!(
                ref_rep.finish_time(f).map(f64::to_bits),
                evt_rep.finish_time(f).map(f64::to_bits),
                "flow {i} finish times diverge"
            );
        }
        for r in 0..nr {
            let a = ref_rep.resource_served(ResourceId(r));
            let b = evt_rep.resource_served(ResourceId(r));
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "resource {r} served bytes diverge: {a} vs {b}"
            );
        }
    }

    #[test]
    fn engines_agree_on_staggered_contention() {
        assert_engines_agree(|sim| {
            let l1 = sim.add_resource("l1", 100.0);
            let l2 = sim.add_resource("l2", 50.0);
            sim.add_flow(FlowSpec::new(750.0).through(l1));
            sim.add_flow(FlowSpec::new(250.0).through(l2).released_at(1.5));
            sim.add_flow(FlowSpec::new(250.0).through(l1).through(l2).with_latency(0.25));
            for _ in 0..8 {
                sim.add_flow(FlowSpec::new(100.0).through(l1).released_at(3.0));
            }
        });
    }

    #[test]
    fn engines_agree_on_equal_rate_ties() {
        // Identical capacities make the progressive-filling best-level scan
        // tie on every level; both engines must break ties the same way.
        assert_engines_agree(|sim| {
            let a = sim.add_resource("a", 10.0);
            let b = sim.add_resource("b", 10.0);
            sim.add_flow(FlowSpec::new(40.0).through(a));
            sim.add_flow(FlowSpec::new(40.0).through(b));
            sim.add_flow(FlowSpec::new(40.0).through(a).through(b));
            sim.add_flow(FlowSpec::new(40.0).through(b).through(a));
        });
    }

    #[test]
    fn engines_agree_near_saturation() {
        // Byte counts that leave residuals within a few ulps of the EPS
        // retirement threshold; regression guard for the freeze/retire
        // slack handling in both engines.
        assert_engines_agree(|sim| {
            let r = sim.add_resource("link", 1.0 / 3.0);
            let s = sim.add_resource("slow", 1e-3);
            for i in 0..6 {
                sim.add_flow(FlowSpec::new(0.1 + 1e-13 * i as f64).through(r));
            }
            sim.add_flow(FlowSpec::new(1e-6).through(r).through(s));
        });
    }

    #[test]
    fn event_engine_groups_identical_flows() {
        // 64 clones + 1 straggler: the event core should step through the
        // exact trajectory of the reference engine while holding only two
        // groups internally.  The observable check is the bit-identical
        // report; the grouping itself is covered by the event count.
        assert_engines_agree(|sim| {
            let r = sim.add_resource("link", 1000.0);
            for _ in 0..64 {
                sim.add_flow(FlowSpec::new(100.0).through(r));
            }
            sim.add_flow(FlowSpec::new(5.0).through(r).released_at(0.02));
        });
    }

    #[test]
    fn engine_override_controls_resolution() {
        set_engine_override(Some(SimEngine::Reference));
        // A per-simulation choice still wins over the override.
        let mut sim = Simulation::new().with_engine(SimEngine::Event);
        let r = sim.add_resource("link", 100.0);
        sim.add_flow(FlowSpec::new(100.0).through(r));
        assert!(sim.run().is_ok());
        set_engine_override(None);
    }
}
