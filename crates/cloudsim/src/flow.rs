//! Flows: data transfers traversing a path of shared resources.

use crate::resource::ResourceId;

/// Identifier of a flow inside one [`crate::engine::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) usize);

impl FlowId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Declarative description of a flow, built with a fluent API and handed to
/// [`crate::engine::Simulation::add_flow`].
///
/// A flow moves `bytes` through every resource in `path` simultaneously
/// (store-and-forward pipelining is not modeled: at our transfer sizes the
/// pipeline fill time is negligible against the transfer time).  The flow
/// becomes active at `release` seconds, after an optional additional fixed
/// `latency` (per-request software overhead, RPC round trips, metadata
/// look-ups) which consumes time but no bandwidth.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Payload size in bytes.  Must be positive.
    pub bytes: f64,
    /// Resources traversed; capacity is consumed on every one of them.
    pub path: Vec<ResourceId>,
    /// Absolute time at which the flow is submitted.
    pub release: f64,
    /// Fixed serial latency after release before the transfer starts.
    pub latency: f64,
    /// Optional label for debugging and reports.
    pub label: Option<String>,
}

impl FlowSpec {
    /// A flow of `bytes` bytes released at t=0 with no extra latency.
    pub fn new(bytes: f64) -> Self {
        Self { bytes, path: Vec::new(), release: 0.0, latency: 0.0, label: None }
    }

    /// Add a resource to the flow's path.
    pub fn through(mut self, r: ResourceId) -> Self {
        self.path.push(r);
        self
    }

    /// Add several resources to the flow's path.
    pub fn through_all(mut self, rs: impl IntoIterator<Item = ResourceId>) -> Self {
        self.path.extend(rs);
        self
    }

    /// Set the absolute release time.
    pub fn released_at(mut self, t: f64) -> Self {
        self.release = t;
        self
    }

    /// Add fixed pre-transfer latency (software/RPC overhead).
    pub fn with_latency(mut self, l: f64) -> Self {
        self.latency = l;
        self
    }

    /// Attach a label (shows up in reports).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The absolute time at which the flow starts consuming bandwidth.
    pub fn activation_time(&self) -> f64 {
        self.release + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_path_and_times() {
        let spec = FlowSpec::new(100.0)
            .through(ResourceId(0))
            .through(ResourceId(3))
            .released_at(2.0)
            .with_latency(0.5)
            .labeled("t");
        assert_eq!(spec.bytes, 100.0);
        assert_eq!(spec.path, vec![ResourceId(0), ResourceId(3)]);
        assert_eq!(spec.activation_time(), 2.5);
        assert_eq!(spec.label.as_deref(), Some("t"));
    }

    #[test]
    fn through_all_extends() {
        let spec = FlowSpec::new(1.0).through_all([ResourceId(1), ResourceId(2)]);
        assert_eq!(spec.path.len(), 2);
    }
}
