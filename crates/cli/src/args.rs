//! A tiny `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: the subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand word (first non-flag argument).
    pub command: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    // Bare flags act as booleans.
                    _ => "true".to_string(),
                };
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(format!("flag --{key} given twice"));
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(format!("unexpected positional argument {arg:?}"));
            }
        }
        Ok(out)
    }

    /// Get a flag's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Get a flag or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parse a flag into any `FromStr` type, with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// True if a boolean flag is present (and not explicitly "false").
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some(v) if v != "false")
    }

    /// Error on any flag not in the allowed set (typo protection).
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} (allowed: {})",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse("recommend --app btio --procs 64 --top 3").unwrap();
        assert_eq!(a.command.as_deref(), Some("recommend"));
        assert_eq!(a.get("app"), Some("btio"));
        assert_eq!(a.parse_or("procs", 0usize).unwrap(), 64);
        assert_eq!(a.parse_or("top", 1usize).unwrap(), 3);
        assert_eq!(a.parse_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn bare_flags_are_booleans() {
        let a = parse("train --verbose --dims 5").unwrap();
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.parse_or("dims", 0usize).unwrap(), 5);
    }

    #[test]
    fn rejects_duplicates_and_extra_positionals() {
        assert!(parse("x --a 1 --a 2").is_err());
        assert!(parse("x y").is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let a = parse("screen --seed 1 --oops 2").unwrap();
        assert!(a.reject_unknown(&["seed"]).is_err());
        assert!(a.reject_unknown(&["seed", "oops"]).is_ok());
    }

    #[test]
    fn invalid_numbers_error_cleanly() {
        let a = parse("train --dims banana").unwrap();
        let e = a.parse_or("dims", 0usize).unwrap_err();
        assert!(e.contains("--dims"));
    }
}
