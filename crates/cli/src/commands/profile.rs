//! `acic profile` — extract the nine Table-1 I/O characteristics.

use crate::args::Args;
use crate::registry::app_by_name;
use acic_apps::{profile, IoTrace};
use acic_cloudsim::units::fmt_bytes;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["app", "procs", "trace", "emit-trace"])?;

    let trace: IoTrace = match (args.get("trace"), args.get("app")) {
        (Some(path), _) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            IoTrace::from_log(&text)?
        }
        (None, Some(name)) => {
            let procs: usize = args.parse_or("procs", 64)?;
            app_by_name(name, procs)?.trace()
        }
        (None, None) => return Err("either --trace FILE or --app NAME is required".into()),
    };

    if let Some(path) = args.get("emit-trace") {
        std::fs::write(path, trace.to_log()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("trace log written to {path} ({} records)", trace.records.len());
    }

    let c = profile(&trace).ok_or("the trace contains no I/O records")?;
    println!("application I/O characteristics (Table 1, lower half):");
    println!("  Num. of all processes : {}", c.nprocs);
    println!("  Num. of I/O processes : {}", c.io_procs);
    println!("  I/O interface         : {}", c.api);
    println!("  I/O iteration count   : {}", c.iterations);
    println!("  Data size             : {} per process per iteration", fmt_bytes(c.data_size));
    println!("  Request size          : {}", fmt_bytes(c.request_size));
    println!("  Read and/or write     : {} (read fraction {:.0}%)", c.op, (c.read_fraction * 100.0).max(0.0));
    println!("  Collective            : {}", if c.collective { "yes" } else { "no" });
    println!("  File sharing          : {}", if c.shared_file { "share" } else { "individual" });
    Ok(())
}
