//! `acic sweep` — exhaustive ground-truth measurement of all candidates.

use crate::args::Args;
use crate::commands::goal;
use crate::registry::app_by_name;
use acic::sweep::Spectrum;
use acic::{Metrics, Objective};
use acic_cloudsim::instance::InstanceType;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["app", "procs", "goal", "seed", "report", "sim-engine"])?;
    crate::commands::apply_sim_engine(args)?;
    let app_name = args.get("app").ok_or("--app is required")?;
    let procs: usize = args.parse_or("procs", 64)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    let objective = goal(args)?;
    let model = app_by_name(app_name, procs)?;

    let metrics = Metrics::new();
    let spectrum = {
        let _span = metrics.span("phase.sweep");
        Spectrum::measure(&model.workload(), InstanceType::Cc2_8xlarge, seed)
            .map_err(|e| e.to_string())?
    };
    metrics.incr("sweep.candidates.measured", spectrum.entries.len() as u64);

    println!(
        "exhaustive sweep of {} candidates for {}-{procs} (sorted by {objective}):",
        spectrum.entries.len(),
        model.name()
    );
    let mut rows = spectrum.entries.clone();
    rows.sort_by(|a, b| a.metric(objective).total_cmp(&b.metric(objective)));
    println!("{:<28} {:>10} {:>10}", "configuration", "time", "cost");
    for e in &rows {
        let marker = if e.config == acic::SystemConfig::baseline() { "  <- baseline" } else { "" };
        println!("{:<28} {:>9.1}s {:>9.3}${marker}", e.config.notation(), e.secs, e.cost);
    }
    println!();
    println!(
        "spread: {:.1}x ({}); median {}: {:.3}",
        spectrum.spread(objective),
        match objective {
            Objective::Performance => "worst/best time",
            Objective::Cost => "worst/best cost",
        },
        objective,
        spectrum.median_metric(objective)
    );
    if args.flag("report") {
        eprint!("{}", metrics.render());
    }
    Ok(())
}
