//! `acic publish` — cut a serving snapshot from the durable training
//! store.
//!
//! Opens the store (repairing torn WAL tails and orphaned segments as it
//! goes), compacts it into its canonical single-segment form, and writes a
//! [`PublishedSnapshot`] the serving layer loads with `--snapshot` (or
//! watches with `serve --watch`).  Publishing is *incremental*: when the
//! existing snapshot already carries the same canonical-set hash, seed,
//! and model kind, nothing is retrained and nothing is rewritten — the
//! file's bytes (and any watcher's view of it) are untouched.

use crate::args::Args;
use acic::store::{model_code, parse_model_code};
use acic::{Metrics, Predictor, PublishedSnapshot, Store};
use acic_cart::ModelKind;
use std::path::Path;

/// Parse `--model`: the friendly words `recommend` accepts plus explicit
/// snapshot codes (`forest:12`, `knn:3`).
pub fn parse_model_flag(word: &str) -> Result<ModelKind, String> {
    match word {
        "cart" => Ok(ModelKind::Cart),
        "forest" => Ok(ModelKind::Forest { n_trees: 25 }),
        "knn" => Ok(ModelKind::Knn { k: 7 }),
        other => parse_model_code(other)
            .map_err(|_| format!("invalid --model {other:?} (cart, forest[:N], or knn[:K])")),
    }
}

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["store", "out", "seed", "model", "force", "no-compact", "report"])?;
    let store_dir = args.get("store").ok_or("--store DIR is required")?;
    let out = args.get("out").ok_or("--out FILE is required")?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    let model = parse_model_flag(args.get_or("model", "cart"))?;
    let metrics = Metrics::new();

    let mut store = Store::open(Path::new(store_dir)).map_err(|e| e.to_string())?;
    let report = store.open_report();
    eprintln!(
        "store {store_dir}: {} samples ({} in {} segment(s), {} in WAL)",
        store.len(),
        report.segment_samples,
        report.segments,
        report.wal_samples
    );
    if report.repaired() {
        eprintln!(
            "repaired on open: {} torn WAL byte(s) truncated, {} duplicate WAL line(s) absorbed, \
             {} orphan segment(s) removed",
            report.torn_wal_bytes, report.wal_duplicates, report.orphan_segments
        );
    }
    if store.is_empty() {
        return Err(format!("store {store_dir} holds no samples; run `acic train --store` first"));
    }

    if !args.flag("no-compact") {
        let _span = metrics.span("phase.compact");
        let c = store.compact().map_err(|e| e.to_string())?;
        if c.changed {
            eprintln!(
                "compacted {} segment(s) + WAL into {} canonical samples ({} duplicate(s) dropped)",
                c.segments_merged, c.samples, c.duplicates_dropped
            );
        }
    }

    let samples = store.canonical();
    let hash = acic::store::hash_samples(&samples);

    // Incremental publish: identical (hash, seed, model) means the bytes
    // on disk would come out identical — skip the retrain and the write.
    if !args.flag("force") {
        if let Ok(existing) = PublishedSnapshot::read(Path::new(out)) {
            if existing.hash == hash && existing.seed == seed && existing.model == model {
                eprintln!(
                    "snapshot {out} is up to date (hash {hash:016x}, seed {seed}, model {})",
                    model_code(model)
                );
                return Ok(());
            }
        }
    }

    let snapshot = PublishedSnapshot { hash, seed, model, samples };
    {
        // Validation fit: never publish a snapshot the serving layer
        // cannot train from.
        let _span = metrics.span("phase.train");
        Predictor::train_with(&snapshot.to_training_db(), seed, model)
            .map_err(|e| format!("snapshot failed its validation fit: {e}"))?;
    }
    snapshot.write(Path::new(out)).map_err(|e| e.to_string())?;
    eprintln!(
        "published {} samples to {out} (hash {hash:016x}, seed {seed}, model {})",
        snapshot.samples.len(),
        model_code(model)
    );
    if args.flag("report") {
        eprint!("{}", metrics.render());
    }
    Ok(())
}
