//! `acic train` — collect a training database, fault-tolerantly.

use crate::args::Args;
use acic::reducer::reduce;
use acic::training::CollectOptions;
use acic::{Metrics, Objective, RetryPolicy, Trainer};
use acic_fsim::FaultPlan;
use std::path::Path;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "dims",
        "seed",
        "out",
        "ranking",
        "faults",
        "resume",
        "report",
        "retries",
        "allow-skips",
    ])?;
    let dims: usize = args.parse_or("dims", 7)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    if dims == 0 || dims > 15 {
        return Err("--dims must be in 1..=15".into());
    }
    let faults = FaultPlan::parse(args.get_or("faults", "none"))?;
    let retries: u32 = args.parse_or("retries", RetryPolicy::DEFAULT.max_retries)?;
    let retry = RetryPolicy { max_retries: retries, ..RetryPolicy::DEFAULT };

    let trainer = match args.get_or("ranking", "paper") {
        "paper" => Trainer::with_paper_ranking(seed),
        "screen" => {
            let r = reduce(Objective::Performance, seed).map_err(|e| e.to_string())?;
            Trainer::new(r.ranking, seed)
        }
        other => return Err(format!("invalid --ranking {other:?} (paper or screen)")),
    }
    .with_faults(faults)
    .with_retry(retry);

    eprintln!(
        "training over the top {dims} dimensions: {:?}...",
        &trainer.ranking[..dims.min(trainer.ranking.len())]
    );
    let points = trainer.sample_points(dims);
    let metrics = Metrics::new();
    let opts = CollectOptions {
        journal: args.get("resume").map(Path::new),
        metrics: Some(&metrics),
        strict: false,
    };
    let collection = {
        let _span = metrics.span("phase.train");
        trainer.collect_with(&points, &opts).map_err(|e| e.to_string())?
    };
    let db = &collection.db;
    let report = &collection.report;
    eprintln!(
        "collected {} points ({:.0} simulated seconds, ${:.2}){}",
        db.len(),
        db.collect_secs,
        db.collect_cost_usd,
        if report.resumed > 0 {
            format!(", {} restored from journal", report.resumed)
        } else {
            String::new()
        }
    );
    if args.flag("report") {
        eprint!("{}", report.render());
        eprint!("{}", metrics.render());
    }

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, db.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("database written to {path}");
        }
        None => print!("{}", db.to_text()),
    }

    if !report.skipped.is_empty() && !args.flag("allow-skips") {
        return Err(format!(
            "{} point(s) skipped after retries (first: {}); pass --allow-skips to accept a \
             partial database",
            report.skipped.len(),
            report.skipped[0].error
        ));
    }
    Ok(())
}
