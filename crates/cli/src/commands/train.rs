//! `acic train` — collect a training database, fault-tolerantly: either
//! the exhaustive campaign, or (with `--search`) an adaptive campaign
//! planned round-by-round by `acic-search`.

use crate::args::Args;
use acic::reducer::reduce;
use acic::training::CollectOptions;
use acic::{Metrics, Objective, RetryPolicy, Trainer};
use acic_fsim::FaultPlan;
use acic_search::{run_search, Budget, SearchConfig, Strategy};
use std::path::Path;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "dims",
        "seed",
        "out",
        "ranking",
        "faults",
        "resume",
        "report",
        "retries",
        "allow-skips",
        "store",
        "compact",
        "sim-engine",
        "search",
        "budget",
        "batch",
        "plateau",
        "goal",
        "warm-start",
        "plan-out",
    ])?;
    crate::commands::apply_sim_engine(args)?;
    if args.flag("compact") && args.get("store").is_none() {
        return Err("--compact requires --store".into());
    }
    if args.get("search").is_none() {
        for f in ["budget", "batch", "plateau", "goal", "warm-start", "plan-out"] {
            if args.get(f).is_some() {
                return Err(format!("--{f} requires --search"));
            }
        }
    }
    let dims: usize = args.parse_or("dims", 7)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    if dims == 0 || dims > 15 {
        return Err("--dims must be in 1..=15".into());
    }
    let faults = FaultPlan::parse(args.get_or("faults", "none"))?;
    let retries: u32 = args.parse_or("retries", RetryPolicy::DEFAULT.max_retries)?;
    let retry = RetryPolicy { max_retries: retries, ..RetryPolicy::DEFAULT };

    let trainer = match args.get_or("ranking", "paper") {
        "paper" => Trainer::with_paper_ranking(seed),
        "screen" => {
            let r = reduce(Objective::Performance, seed).map_err(|e| e.to_string())?;
            Trainer::new(r.ranking, seed)
        }
        other => return Err(format!("invalid --ranking {other:?} (paper or screen)")),
    }
    .with_faults(faults)
    .with_retry(retry);

    eprintln!(
        "training over the top {dims} dimensions: {:?}...",
        &trainer.ranking[..dims.min(trainer.ranking.len())]
    );
    let points = trainer.sample_points(dims);
    let metrics = Metrics::new();
    let journal = args.get("resume").map(Path::new);

    // The durable store opens *before* collection: its canonical index
    // answers already-measured configurations (lookup-before-measure)
    // instead of re-simulating them.
    let mut store = match args.get("store") {
        None => None,
        Some(dir) => {
            let s = acic::Store::open(Path::new(dir)).map_err(|e| e.to_string())?;
            if s.open_report().repaired() {
                let r = s.open_report();
                eprintln!(
                    "store {dir} repaired on open: {} torn WAL byte(s), {} orphan segment(s)",
                    r.torn_wal_bytes, r.orphan_segments
                );
            }
            Some(s)
        }
    };

    let collection = if let Some(word) = args.get("search") {
        // Adaptive path: a planner proposes measurement batches under a
        // budget; the exhaustive grid is only the candidate space.
        let strategy: Strategy = word.parse()?;
        let objective = crate::commands::goal(args)?;
        let tenth = points.len().div_ceil(10).max(1);
        let budget_n: usize = args.parse_or("budget", tenth)?;
        let mut budget = Budget::measurements(budget_n);
        if args.get("batch").is_some() {
            budget = budget.with_batch(args.parse_or("batch", budget.batch)?);
        }
        if args.get("plateau").is_some() {
            budget = budget.with_plateau(args.parse_or("plateau", 2)?);
        }
        let mut lookup = store.as_ref().map(|s| s.lookup_index()).unwrap_or_default();
        let mut warm = Vec::new();
        if let Some(dir) = args.get("warm-start") {
            let p = Path::new(dir);
            if !p.is_dir() {
                return Err(format!("--warm-start {dir}: no such store"));
            }
            let ws = acic::Store::open(p).map_err(|e| e.to_string())?;
            warm = ws.canonical();
            eprintln!("warm start from {dir}: {} canonical sample(s)", warm.len());
            // Exact-key overlaps are answered for free; the rest become
            // remapped surrogate priors inside the search.
            lookup.merge(ws.lookup_index());
        }
        let cfg = SearchConfig {
            strategy,
            budget,
            objective,
            journal,
            metrics: Some(&metrics),
            lookup: if lookup.is_empty() { None } else { Some(&lookup) },
            warm: &warm,
        };
        let out = {
            let _span = metrics.span("phase.train");
            run_search(&trainer, &points, &cfg).map_err(|e| e.to_string())?
        };
        eprintln!(
            "{} search stopped ({}): {} round(s), {} measurement(s) of {} grid points, \
             {} store hit(s), best {objective} improvement {:.4}",
            out.plan.strategy,
            out.plan.stop.code(),
            out.plan.rounds.len(),
            out.plan.measurements(),
            points.len(),
            out.plan.store_hits(),
            out.plan.best().unwrap_or(f64::NAN),
        );
        if let Some(path) = args.get("plan-out") {
            std::fs::write(path, out.plan.render())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("plan written to {path}");
        }
        out.collection
    } else {
        let lookup = store.as_ref().map(|s| s.lookup_index());
        let opts = CollectOptions {
            journal,
            metrics: Some(&metrics),
            strict: false,
            subset: None,
            lookup: lookup.as_ref(),
        };
        let _span = metrics.span("phase.train");
        trainer.collect_with(&points, &opts).map_err(|e| e.to_string())?
    };
    let db = &collection.db;
    let report = &collection.report;
    eprintln!(
        "collected {} points ({:.0} simulated seconds, ${:.2}){}{}",
        db.len(),
        db.collect_secs,
        db.collect_cost_usd,
        if report.resumed > 0 {
            format!(", {} restored from journal", report.resumed)
        } else {
            String::new()
        },
        if report.store_hits > 0 {
            format!(", {} answered from store", report.store_hits)
        } else {
            String::new()
        }
    );
    if args.flag("report") {
        eprint!("{}", report.render());
        eprint!("{}", metrics.render());
    }

    // Durable ingest: append this campaign's observations (with their
    // provenance) to the training store.  Idempotent — re-running or
    // resuming the same campaign appends nothing new.
    if let (Some(dir), Some(store)) = (args.get("store"), store.as_mut()) {
        let stats = store
            .ingest_collection(&trainer.campaign_id(&points), &collection)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "store {dir}: {} sample(s) appended, {} duplicate(s) skipped ({} total)",
            stats.appended,
            stats.duplicates,
            store.len()
        );
        if args.flag("compact") {
            let c = store.compact().map_err(|e| e.to_string())?;
            if c.changed {
                eprintln!("store {dir}: compacted to {} canonical sample(s)", c.samples);
            }
        }
    }

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, db.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("database written to {path}");
        }
        None => print!("{}", db.to_text()),
    }

    if !report.skipped.is_empty() && !args.flag("allow-skips") {
        return Err(format!(
            "{} point(s) skipped after retries (first: {}); pass --allow-skips to accept a \
             partial database",
            report.skipped.len(),
            report.skipped[0].error
        ));
    }
    Ok(())
}
