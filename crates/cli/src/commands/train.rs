//! `acic train` — collect a training database, fault-tolerantly.

use crate::args::Args;
use acic::reducer::reduce;
use acic::training::CollectOptions;
use acic::{Metrics, Objective, RetryPolicy, Trainer};
use acic_fsim::FaultPlan;
use std::path::Path;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "dims",
        "seed",
        "out",
        "ranking",
        "faults",
        "resume",
        "report",
        "retries",
        "allow-skips",
        "store",
        "compact",
        "sim-engine",
    ])?;
    crate::commands::apply_sim_engine(args)?;
    if args.flag("compact") && args.get("store").is_none() {
        return Err("--compact requires --store".into());
    }
    let dims: usize = args.parse_or("dims", 7)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    if dims == 0 || dims > 15 {
        return Err("--dims must be in 1..=15".into());
    }
    let faults = FaultPlan::parse(args.get_or("faults", "none"))?;
    let retries: u32 = args.parse_or("retries", RetryPolicy::DEFAULT.max_retries)?;
    let retry = RetryPolicy { max_retries: retries, ..RetryPolicy::DEFAULT };

    let trainer = match args.get_or("ranking", "paper") {
        "paper" => Trainer::with_paper_ranking(seed),
        "screen" => {
            let r = reduce(Objective::Performance, seed).map_err(|e| e.to_string())?;
            Trainer::new(r.ranking, seed)
        }
        other => return Err(format!("invalid --ranking {other:?} (paper or screen)")),
    }
    .with_faults(faults)
    .with_retry(retry);

    eprintln!(
        "training over the top {dims} dimensions: {:?}...",
        &trainer.ranking[..dims.min(trainer.ranking.len())]
    );
    let points = trainer.sample_points(dims);
    let metrics = Metrics::new();
    let opts = CollectOptions {
        journal: args.get("resume").map(Path::new),
        metrics: Some(&metrics),
        strict: false,
    };
    let collection = {
        let _span = metrics.span("phase.train");
        trainer.collect_with(&points, &opts).map_err(|e| e.to_string())?
    };
    let db = &collection.db;
    let report = &collection.report;
    eprintln!(
        "collected {} points ({:.0} simulated seconds, ${:.2}){}",
        db.len(),
        db.collect_secs,
        db.collect_cost_usd,
        if report.resumed > 0 {
            format!(", {} restored from journal", report.resumed)
        } else {
            String::new()
        }
    );
    if args.flag("report") {
        eprint!("{}", report.render());
        eprint!("{}", metrics.render());
    }

    // Durable ingest: append this campaign's observations (with their
    // provenance) to the training store.  Idempotent — re-running or
    // resuming the same campaign appends nothing new.
    if let Some(dir) = args.get("store") {
        let mut store = acic::Store::open(Path::new(dir)).map_err(|e| e.to_string())?;
        if store.open_report().repaired() {
            let r = store.open_report();
            eprintln!(
                "store {dir} repaired on open: {} torn WAL byte(s), {} orphan segment(s)",
                r.torn_wal_bytes, r.orphan_segments
            );
        }
        let stats = store
            .ingest_collection(&trainer.campaign_id(&points), &collection)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "store {dir}: {} sample(s) appended, {} duplicate(s) skipped ({} total)",
            stats.appended,
            stats.duplicates,
            store.len()
        );
        if args.flag("compact") {
            let c = store.compact().map_err(|e| e.to_string())?;
            if c.changed {
                eprintln!("store {dir}: compacted to {} canonical sample(s)", c.samples);
            }
        }
    }

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, db.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("database written to {path}");
        }
        None => print!("{}", db.to_text()),
    }

    if !report.skipped.is_empty() && !args.flag("allow-skips") {
        return Err(format!(
            "{} point(s) skipped after retries (first: {}); pass --allow-skips to accept a \
             partial database",
            report.skipped.len(),
            report.skipped[0].error
        ));
    }
    Ok(())
}
