//! `acic train` — collect a training database.

use crate::args::Args;
use acic::reducer::reduce;
use acic::{Objective, Trainer};

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["dims", "seed", "out", "ranking"])?;
    let dims: usize = args.parse_or("dims", 7)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    if dims == 0 || dims > 15 {
        return Err("--dims must be in 1..=15".into());
    }

    let trainer = match args.get_or("ranking", "paper") {
        "paper" => Trainer::with_paper_ranking(seed),
        "screen" => {
            let r = reduce(Objective::Performance, seed).map_err(|e| e.to_string())?;
            Trainer { ranking: r.ranking, seed }
        }
        other => return Err(format!("invalid --ranking {other:?} (paper or screen)")),
    };

    eprintln!(
        "training over the top {dims} dimensions: {:?}...",
        &trainer.ranking[..dims.min(trainer.ranking.len())]
    );
    let db = trainer.collect(dims).map_err(|e| e.to_string())?;
    eprintln!(
        "collected {} points ({:.0} simulated seconds, ${:.2})",
        db.len(),
        db.collect_secs,
        db.collect_cost_usd
    );

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, db.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("database written to {path}");
        }
        None => print!("{}", db.to_text()),
    }
    Ok(())
}
