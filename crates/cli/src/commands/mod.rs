//! CLI subcommand implementations.

pub mod ior;
pub mod profile;
pub mod recommend;
pub mod screen;
pub mod serve;
pub mod sweep;
pub mod train;
pub mod walk;

use crate::args::Args;
use acic::{Acic, Metrics, Objective, TrainingDb};

/// Top-level usage text.
pub const USAGE: &str = "\
acic — automatic cloud I/O configurator (SC '13 reproduction)

USAGE:
  acic screen     [--goal perf|cost] [--seed N]
        Rank the 15 exploration-space parameters with a 32-run foldover
        Plackett-Burman screen on the simulated cloud.

  acic train      [--dims N] [--seed N] [--out FILE] [--ranking paper|screen]
                  [--faults none|paper-rate|PROB[,PENALTY[,ABORT]]]
                  [--retries N] [--resume JOURNAL] [--report] [--allow-skips]
        Collect an IOR training database over the top N ranked dimensions
        and optionally save it as shareable text.  --faults injects the
        paper's observed connection-loss rate (runs are retried on derived
        seeds, unsalvageable points skipped); --resume checkpoints every
        finished point to an append-only journal and restarts bit-identically
        from it; --report prints the collection report and metrics.

  acic recommend  --app NAME --procs N [--db FILE | --dims N] [--goal perf|cost]
                  [--top K] [--seed N] [--model cart|forest|knn]
                  [--verify [--app-run-secs S]] [--report]
        Profile the application and rank all candidate I/O configurations;
        --verify replays the top-k as IOR probes and re-ranks by
        measurement, accounting residual-hour piggybacking.

  acic profile    (--app NAME --procs N | --trace FILE) [--emit-trace FILE]
        Print the nine Table-1 I/O characteristics of an application model
        or of a recorded trace log.

  acic walk       --app NAME --procs N [--goal perf|cost] [--random] [--seed N]
        PB-guided greedy space walk (no training database needed).

  acic sweep      --app NAME --procs N [--goal perf|cost] [--seed N] [--report]
        Exhaustively measure every candidate configuration (ground truth).

  acic serve      [--db FILE | --dims N] [--seed N] [--workers N] [--queue N]
                  [--batch N] [--cache N] [--replay FILE] [--swap-at N] [--report]
        Run the concurrent recommendation service over a replay file (or
        stdin) of `<app> <procs> <goal> <k>` request lines.  Requests are
        pipelined through a sharded worker pool with result caching and
        admission control; answers print in request order, bit-identical
        at any --workers count.  --swap-at N hot-swaps a freshly retrained
        model snapshot after N submissions, while requests are in flight.

  acic ior        --args \"-a MPIIO -b 16m -t 4m -i 10 -w -c -N 64\"
                  [--config NOTATION] [--seed N]
        Run one IOR-style benchmark line on a configuration (notation like
        nfs.D.EBS or pvfs.4.P.eph.4MB).

Applications: btio, flashio, mpiblast, madbench2 (paper configurations).
";

/// Parse one goal word (`perf`/`cost` and their aliases).
pub fn parse_goal(word: &str) -> Result<Objective, String> {
    match word {
        "perf" | "performance" | "time" => Ok(Objective::Performance),
        "cost" | "money" => Ok(Objective::Cost),
        other => Err(format!("invalid goal {other:?} (expected perf or cost)")),
    }
}

/// Parse `--goal perf|cost` (default perf).
pub fn goal(args: &Args) -> Result<Objective, String> {
    parse_goal(args.get_or("goal", "perf"))
        .map_err(|e| e.replacen("invalid goal", "invalid --goal", 1))
}

/// Bootstrap an [`Acic`] instance the way `recommend` and `serve` share:
/// from a `--db` file when given, else by training in-process over the top
/// `--dims` paper-ranked dimensions.
pub fn acic_from_args(args: &Args, seed: u64, metrics: &Metrics) -> Result<Acic, String> {
    let _span = metrics.span("phase.train");
    let acic = match args.get("db") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let db = TrainingDb::from_text(&text).map_err(|e| e.to_string())?;
            eprintln!("loaded {} training points from {path}", db.len());
            Acic::from_db(db, seed).map_err(|e| e.to_string())?
        }
        None => {
            let dims: usize = args.parse_or("dims", 10)?;
            eprintln!("no --db given; training in-process over the top {dims} dimensions...");
            Acic::with_paper_ranking(dims, seed).map_err(|e| e.to_string())?
        }
    };
    Ok(acic)
}
