//! CLI subcommand implementations.

pub mod ior;
pub mod profile;
pub mod publish;
pub mod recommend;
pub mod screen;
pub mod serve;
pub mod sweep;
pub mod train;
pub mod walk;

use crate::args::Args;
use acic::{Acic, Metrics, Objective, PublishedSnapshot, Store, TrainingDb};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
acic — automatic cloud I/O configurator (SC '13 reproduction)

USAGE:
  acic screen     [--goal perf|cost] [--seed N]
        Rank the 15 exploration-space parameters with a 32-run foldover
        Plackett-Burman screen on the simulated cloud.

  acic train      [--dims N] [--seed N] [--out FILE] [--ranking paper|screen]
                  [--faults none|paper-rate|PROB[,PENALTY[,ABORT]]]
                  [--retries N] [--resume JOURNAL] [--report] [--allow-skips]
                  [--store DIR [--compact]] [--sim-engine event|reference]
                  [--search pb|random|bandit|halving [--budget N] [--batch N]
                   [--plateau N] [--goal perf|cost] [--warm-start DIR]
                   [--plan-out FILE]]
        Collect an IOR training database over the top N ranked dimensions
        and optionally save it as shareable text.  --faults injects the
        paper's observed connection-loss rate (runs are retried on derived
        seeds, unsalvageable points skipped); --resume checkpoints every
        finished point to an append-only journal and restarts bit-identically
        from it; --report prints the collection report and metrics; --store
        ingests the campaign into the durable training store (idempotent:
        re-ingesting a resumed campaign appends nothing new) and answers
        already-measured configurations from it instead of re-simulating.
        --search replaces the exhaustive sweep with an adaptive campaign:
        a deterministic planner (PB-ranked opening book, UCB bandit over a
        CART surrogate, or successive halving) proposes measurement batches
        until the --budget (default: 10% of the grid) or --plateau rule
        stops it; --warm-start seeds the surrogate with another store's
        samples remapped in feature space; --plan-out writes the executed,
        byte-diffable plan.

  acic publish    --store DIR --out FILE [--seed N] [--model cart|forest|knn]
                  [--force] [--no-compact] [--report]
        Compact the durable store and cut a serving snapshot from its
        canonical sample set.  Incremental: when the existing snapshot
        already matches (content hash, seed, model), nothing is retrained
        or rewritten; --force republishes regardless.

  acic recommend  --app NAME --procs N [--db FILE | --snapshot FILE |
                  --store DIR | --dims N] [--goal perf|cost]
                  [--top K] [--seed N] [--model cart|forest|knn]
                  [--verify [--app-run-secs S]] [--report]
        Profile the application and rank all candidate I/O configurations;
        --verify replays the top-k as IOR probes and re-ranks by
        measurement, accounting residual-hour piggybacking.

  acic profile    (--app NAME --procs N | --trace FILE) [--emit-trace FILE]
        Print the nine Table-1 I/O characteristics of an application model
        or of a recorded trace log.

  acic walk       --app NAME --procs N [--goal perf|cost] [--random] [--seed N]
        PB-guided greedy space walk (no training database needed).

  acic sweep      --app NAME --procs N [--goal perf|cost] [--seed N] [--report]
                  [--sim-engine event|reference]
        Exhaustively measure every candidate configuration (ground truth).
        --sim-engine (or the ACIC_SIM env var) selects the event-driven
        simulator core or the progressive-filling reference oracle.

  acic serve      [--db FILE | --snapshot FILE | --store DIR | --dims N]
                  [--seed N] [--workers N] [--queue N] [--batch N] [--cache N]
                  [--replay FILE] [--swap-at N] [--watch] [--report]
        Run the concurrent recommendation service over a replay file (or
        stdin) of `<app> <procs> <goal> <k>` request lines.  Requests are
        pipelined through a sharded worker pool with result caching and
        admission control; answers print in request order, bit-identical
        at any --workers count.  --swap-at N hot-swaps a freshly retrained
        model snapshot after N submissions, while requests are in flight;
        --watch (with --snapshot) re-reads the snapshot file between
        submissions and hot-swaps whenever `acic publish` replaced it.
        Cluster mode: --trace-out FILE [--trace-len N] [--trace-seed N]
        [--trace-pool N] records a seeded machine trace and exits;
        --trace FILE [--nodes N] [--replay-out FILE] [--window N] replays
        it through an N-node cluster-in-a-process (consistent-hash routing,
        verified snapshot replication) — stdout (the replay digest and
        answered/shed counts) is byte-identical at any --nodes count.
        --swap-at N republishes the artifact as a fresh generation
        mid-replay; --kill-node I [--kill-at N] [--rejoin-at N] kills a
        node mid-replay and rejoins it later (sheds are deterministic).

  acic ior        --args \"-a MPIIO -b 16m -t 4m -i 10 -w -c -N 64\"
                  [--config NOTATION] [--seed N]
        Run one IOR-style benchmark line on a configuration (notation like
        nfs.D.EBS or pvfs.4.P.eph.4MB).

Applications: btio, flashio, mpiblast, madbench2 (paper configurations).
";

/// Parse `--sim-engine event|reference` and install the process-wide
/// simulator-core override.  The `ACIC_SIM` environment variable covers
/// the same choice without a flag; the explicit flag wins.
pub fn apply_sim_engine(args: &Args) -> Result<(), String> {
    use acic_cloudsim::{set_engine_override, SimEngine};
    match args.get("sim-engine") {
        None => Ok(()),
        Some("event") => {
            set_engine_override(Some(SimEngine::Event));
            Ok(())
        }
        Some("reference") | Some("oracle") => {
            set_engine_override(Some(SimEngine::Reference));
            Ok(())
        }
        Some(other) => Err(format!("invalid --sim-engine {other:?} (event or reference)")),
    }
}

/// Parse one goal word (`perf`/`cost` and their aliases).
pub fn parse_goal(word: &str) -> Result<Objective, String> {
    match word {
        "perf" | "performance" | "time" => Ok(Objective::Performance),
        "cost" | "money" => Ok(Objective::Cost),
        other => Err(format!("invalid goal {other:?} (expected perf or cost)")),
    }
}

/// Parse `--goal perf|cost` (default perf).
pub fn goal(args: &Args) -> Result<Objective, String> {
    parse_goal(args.get_or("goal", "perf"))
        .map_err(|e| e.replacen("invalid goal", "invalid --goal", 1))
}

/// What [`acic_from_args`] resolved: the fitted instance plus the
/// *effective* seed and model kind.  A snapshot is self-describing — its
/// embedded seed and model win over the command line — and callers that
/// retrain (hot-swaps, `--model` overrides) must reuse these to reproduce
/// the same model.
pub struct Bootstrapped {
    pub acic: Acic,
    pub seed: u64,
    pub model: acic_cart::ModelKind,
}

/// Bootstrap an [`Acic`] instance the way `recommend` and `serve` share:
/// from a `--db` file, a published `--snapshot`, the durable `--store`, or
/// (none given) by training in-process over the top `--dims` paper-ranked
/// dimensions.
pub fn acic_from_args(args: &Args, seed: u64, metrics: &Metrics) -> Result<Bootstrapped, String> {
    let _span = metrics.span("phase.train");
    let sources = ["db", "snapshot", "store"].iter().filter(|f| args.get(f).is_some()).count()
        + usize::from(args.get("dims").is_some());
    if sources > 1 {
        return Err("--db, --snapshot, --store, and --dims are mutually exclusive".into());
    }
    let mut effective = (seed, acic_cart::ModelKind::Cart);
    let acic = match (args.get("db"), args.get("snapshot"), args.get("store")) {
        (Some(path), _, _) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let db = TrainingDb::from_text(&text).map_err(|e| e.to_string())?;
            eprintln!("loaded {} training points from {path}", db.len());
            Acic::from_db(db, seed).map_err(|e| e.to_string())?
        }
        (None, Some(path), _) => {
            let snap = PublishedSnapshot::read(Path::new(path)).map_err(|e| e.to_string())?;
            eprintln!(
                "loaded snapshot {path}: {} samples, hash {:016x}, seed {}, model {}",
                snap.samples.len(),
                snap.hash,
                snap.seed,
                snap.model
            );
            effective = (snap.seed, snap.model);
            let mut acic =
                Acic::from_db(snap.to_training_db(), snap.seed).map_err(|e| e.to_string())?;
            if snap.model != acic_cart::ModelKind::Cart {
                acic.retrain_with(snap.model).map_err(|e| e.to_string())?;
            }
            acic
        }
        (None, None, Some(dir)) => {
            let store = Store::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let r = store.open_report();
            eprintln!(
                "opened store {dir}: {} samples ({} segment(s){})",
                store.len(),
                r.segments,
                if r.repaired() { ", repairs applied" } else { "" }
            );
            Acic::from_db(store.to_training_db(), seed).map_err(|e| e.to_string())?
        }
        (None, None, None) => {
            let dims: usize = args.parse_or("dims", 10)?;
            eprintln!("no --db given; training in-process over the top {dims} dimensions...");
            Acic::with_paper_ranking(dims, seed).map_err(|e| e.to_string())?
        }
    };
    let (seed, model) = effective;
    Ok(Bootstrapped { acic, seed, model })
}
