//! CLI subcommand implementations.

pub mod ior;
pub mod profile;
pub mod recommend;
pub mod screen;
pub mod sweep;
pub mod train;
pub mod walk;

use crate::args::Args;
use acic::Objective;

/// Top-level usage text.
pub const USAGE: &str = "\
acic — automatic cloud I/O configurator (SC '13 reproduction)

USAGE:
  acic screen     [--goal perf|cost] [--seed N]
        Rank the 15 exploration-space parameters with a 32-run foldover
        Plackett-Burman screen on the simulated cloud.

  acic train      [--dims N] [--seed N] [--out FILE] [--ranking paper|screen]
                  [--faults none|paper-rate|PROB[,PENALTY[,ABORT]]]
                  [--retries N] [--resume JOURNAL] [--report] [--allow-skips]
        Collect an IOR training database over the top N ranked dimensions
        and optionally save it as shareable text.  --faults injects the
        paper's observed connection-loss rate (runs are retried on derived
        seeds, unsalvageable points skipped); --resume checkpoints every
        finished point to an append-only journal and restarts bit-identically
        from it; --report prints the collection report and metrics.

  acic recommend  --app NAME --procs N [--db FILE | --dims N] [--goal perf|cost]
                  [--top K] [--seed N] [--model cart|forest|knn]
                  [--verify [--app-run-secs S]] [--report]
        Profile the application and rank all candidate I/O configurations;
        --verify replays the top-k as IOR probes and re-ranks by
        measurement, accounting residual-hour piggybacking.

  acic profile    (--app NAME --procs N | --trace FILE) [--emit-trace FILE]
        Print the nine Table-1 I/O characteristics of an application model
        or of a recorded trace log.

  acic walk       --app NAME --procs N [--goal perf|cost] [--random] [--seed N]
        PB-guided greedy space walk (no training database needed).

  acic sweep      --app NAME --procs N [--goal perf|cost] [--seed N] [--report]
        Exhaustively measure every candidate configuration (ground truth).

  acic ior        --args \"-a MPIIO -b 16m -t 4m -i 10 -w -c -N 64\"
                  [--config NOTATION] [--seed N]
        Run one IOR-style benchmark line on a configuration (notation like
        nfs.D.EBS or pvfs.4.P.eph.4MB).

Applications: btio, flashio, mpiblast, madbench2 (paper configurations).
";

/// Parse `--goal perf|cost` (default perf).
pub fn goal(args: &Args) -> Result<Objective, String> {
    match args.get_or("goal", "perf") {
        "perf" | "performance" | "time" => Ok(Objective::Performance),
        "cost" | "money" => Ok(Objective::Cost),
        other => Err(format!("invalid --goal {other:?} (expected perf or cost)")),
    }
}
