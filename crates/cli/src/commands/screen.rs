//! `acic screen` — PB parameter ranking.

use crate::args::Args;
use crate::commands::goal;
use acic::reducer::reduce;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["goal", "seed"])?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    let objective = goal(args)?;

    let r = reduce(objective, seed).map_err(|e| e.to_string())?;
    println!(
        "foldover PB screen: {} IOR runs, ${:.2} simulated collection cost, objective = {objective}",
        r.runs, r.screen_cost_usd
    );
    println!("{:<4} {:<24} {:>14}", "rank", "parameter", "effect");
    let mut by_rank = r.effects.clone();
    by_rank.sort_by_key(|(_, _, rank)| *rank);
    for (param, effect, rank) in by_rank {
        println!("{rank:<4} {:<24} {effect:>14.3}", param.name());
    }
    Ok(())
}
