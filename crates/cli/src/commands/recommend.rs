//! `acic recommend` — profile an application and rank candidates.
//!
//! The ranking itself runs through the `acic-serve` query path (a
//! single-shot, one-worker service), so this command and the long-lived
//! `acic serve` service answer through exactly the same code and can
//! never diverge.  That path scores on the compiled inference plane
//! (batched `CompiledModel` passes over the cached candidate matrix);
//! `ACIC_ENGINE=interpreted` in the environment forces the interpreted
//! reference models instead — output must be byte-identical either way,
//! which `scripts/tier1.sh` checks.  `--top 0` is clamped to 1 (see
//! `Predictor::top_k`).

use crate::args::Args;
use crate::commands::{acic_from_args, goal};
use crate::registry::app_by_name;
use acic::profile::app_point_from;
use acic::{Metrics, Recommendation};
use acic_serve::Request;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "app",
        "procs",
        "db",
        "dims",
        "snapshot",
        "store",
        "goal",
        "top",
        "seed",
        "verify",
        "app-run-secs",
        "model",
        "report",
    ])?;
    if args.get("snapshot").is_some() && args.get("model").is_some() {
        return Err("--model conflicts with --snapshot (the snapshot embeds its model kind)".into());
    }
    let metrics = Metrics::new();
    let app_name = args.get("app").ok_or("--app is required")?;
    let procs: usize = args.parse_or("procs", 64)?;
    let top: usize = args.parse_or("top", 3)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    let objective = goal(args)?;
    let model = app_by_name(app_name, procs)?;

    let boot = acic_from_args(args, seed, &metrics)?;
    let mut acic = boot.acic;
    metrics.incr("recommend.db.points", acic.db.len() as u64);

    // The snapshot's embedded model already fitted inside acic_from_args;
    // otherwise an explicit --model retrains over the loaded database.
    let model_kind = match args.get("model") {
        Some(word) => crate::commands::publish::parse_model_flag(word)?,
        None => boot.model,
    };
    if model_kind != boot.model {
        let _span = metrics.span("phase.retrain");
        acic.retrain_with(model_kind).map_err(|e| e.to_string())?;
    }

    let point = {
        let _span = metrics.span("phase.profile");
        let chars = acic_apps::profile(&model.trace())
            .ok_or_else(|| format!("{} performs no I/O", model.name()))?;
        app_point_from(&chars)
    };
    let recs: Vec<Recommendation> = {
        let _span = metrics.span("phase.rank");
        let request = Request { app: point, objective, k: top };
        let response = acic_serve::answer_single_shot(&acic.predictor, acic.db.len(), request, &metrics)
            .map_err(|e| e.to_string())?;
        response
            .top
            .iter()
            .map(|&(config, predicted_improvement)| Recommendation { config, predicted_improvement })
            .collect()
    };
    metrics.incr("recommend.candidates.returned", recs.len() as u64);
    println!(
        "top {} I/O configurations for {}-{procs} ({objective} goal, {model_kind} model):",
        recs.len(),
        model.name()
    );
    for (i, r) in recs.iter().enumerate() {
        println!(
            "  {}. {:<26} predicted {:.2}x improvement over baseline",
            i + 1,
            r.config.notation(),
            r.predicted_improvement
        );
    }

    // Optional verification probes over the top-k list (paper §5.3's
    // piggy-backed benchmarking runs).
    if args.flag("verify") {
        use acic::profile::app_point_from;
        use acic::verify::verify_top_k;
        use acic_apps::profile;
        let app_run_secs: f64 = args.parse_or("app-run-secs", 0.0)?;
        let point = {
            let _span = metrics.span("phase.profile");
            app_point_from(&profile(&model.trace()).ok_or("application performs no I/O")?)
        };
        let ranked: Vec<(acic::SystemConfig, f64)> =
            recs.iter().map(|r| (r.config, r.predicted_improvement)).collect();
        let v = {
            let _span = metrics.span("phase.verify");
            verify_top_k(&ranked, &point, objective, top, app_run_secs, seed)
                .map_err(|e| e.to_string())?
        };
        println!();
        println!("verification probes (IOR replays of the profiled characteristics):");
        for (i, c) in v.ranked.iter().enumerate() {
            println!(
                "  {}. {:<26} measured {:.3} ({:.1}s probe)",
                i + 1,
                c.config.notation(),
                c.measured_metric,
                c.probe_secs
            );
        }
        println!(
            "probing: {:.1}s total, ${:.2} stand-alone, {:.0}% rode residual instance-hours",
            v.total_probe_secs,
            v.standalone_cost,
            v.free_fraction() * 100.0
        );
    }
    if args.flag("report") {
        eprint!("{}", metrics.render());
    }
    Ok(())
}
