//! `acic ior` — run an IOR-style benchmark line on one configuration of
//! the simulated cloud (the unit of work ACIC's training is made of).

use crate::args::Args;
use acic::SystemConfig;
use acic_iobench::{parse_ior_args, run_ior};

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["args", "config", "seed"])?;
    let line = args.get("args").ok_or("--args \"<IOR options>\" is required")?;
    let config = SystemConfig::parse_notation(args.get_or("config", "nfs.D.EBS"))?;
    let seed: u64 = args.parse_or("seed", 20131117)?;

    let cfg = parse_ior_args(line)?;
    let report = run_ior(&config.to_io_system(cfg.nprocs), &cfg, seed).map_err(|e| e.to_string())?;

    println!("IOR on {} ({} tasks):", config.notation(), cfg.nprocs);
    println!("  options        : {line}");
    println!("  execution time : {:.3} s", report.secs());
    println!("  aggregate bw   : {:.1} MB/s", report.bandwidth_bps / 1e6);
    println!("  cost (eq. 1)   : ${:.4} over {} instances", report.cost, report.instances);
    Ok(())
}
