//! `acic serve` — drive the concurrent recommendation service from a
//! replay file (or stdin), single-node or clustered.
//!
//! Each request line is `<app> <procs> <goal> <k>` (`#` starts a comment).
//! Requests are profiled into query points, submitted to the sharded
//! worker pool in file order without waiting for earlier answers
//! (pipelined), and the answers are printed strictly in request order —
//! so stdout is bit-identical at any `--workers` count and across a
//! `--swap-at` hot-swap to an identically retrained snapshot, which is
//! exactly what the tier-1 gate diffs.
//!
//! Cluster mode drives the multi-node tier instead:
//!
//! * `--trace-out FILE --trace-len N --trace-seed S` records a seeded
//!   machine trace (exact-round-trip line format) and exits.
//! * `--trace FILE --nodes N` replays a recorded trace through an
//!   `N`-node cluster-in-a-process: stdout carries only the replay digest
//!   and the answered/shed counts, which are byte-identical at any node
//!   count (the tier-1 cluster gate diffs `--nodes 1/2/4`).  `--swap-at I`
//!   republishes the artifact as a fresh generation mid-replay;
//!   `--kill-node J --kill-at I --rejoin-at I'` schedules a mid-replay
//!   node failure; `--replay-out FILE` records every answered
//!   `index\tpayload` line for byte-diffing.

use crate::args::Args;
use crate::commands::{acic_from_args, parse_goal};
use crate::registry::app_by_name;
use acic::profile::app_point_from;
use acic::{Metrics, Predictor, PublishedSnapshot};
use acic_serve::cluster::{harness, Cluster, ClusterConfig, KillPlan, NodeId, ReplayOptions, Trace};
use acic_serve::{Pending, Request, ServeConfig, Server};
use std::io::Read;
use std::path::Path;

/// Parse one replay line into a display label and a request.
fn parse_request_line(line: &str) -> Result<(String, Request), String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let [app_name, procs, goal_word, k] = tokens.as_slice() else {
        return Err(format!("want `<app> <procs> <goal> <k>`, got {line:?}"));
    };
    let procs: usize = procs.parse().map_err(|_| format!("bad procs {procs:?}"))?;
    let objective = parse_goal(goal_word)?;
    let k: usize = k.parse().map_err(|_| format!("bad k {k:?}"))?;
    let model = app_by_name(app_name, procs)?;
    let chars = acic_apps::profile(&model.trace())
        .ok_or_else(|| format!("{} performs no I/O", model.name()))?;
    let label = format!("{}-{procs} {goal_word} top{k}", model.name());
    Ok((label, Request { app: app_point_from(&chars), objective, k }))
}

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "db", "dims", "snapshot", "store", "seed", "workers", "queue", "batch", "cache", "replay",
        "swap-at", "watch", "report", "nodes", "trace", "trace-out", "trace-len", "trace-seed",
        "trace-pool", "replay-out", "window", "kill-node", "kill-at", "rejoin-at",
    ])?;
    let metrics = Metrics::new();
    let seed: u64 = args.parse_or("seed", 20131117)?;
    let workers: usize = args.parse_or("workers", 2)?;
    let swap_at: usize = args.parse_or("swap-at", usize::MAX)?;
    let watch = args.flag("watch");
    if watch && args.get("snapshot").is_none() {
        return Err("--watch requires --snapshot FILE (the file `acic publish` writes)".into());
    }

    // Record mode: generate a seeded trace, write it, done — no model.
    if let Some(path) = args.get("trace-out") {
        let len: usize = args.parse_or("trace-len", 100_000)?;
        let trace_seed: u64 = args.parse_or("trace-seed", 20131117)?;
        let pool: usize = args.parse_or("trace-pool", Trace::DEFAULT_POOL)?;
        let trace = Trace::with_pool(trace_seed, len, pool);
        std::fs::write(path, trace.render()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("recorded {len}-request trace (seed {trace_seed}, pool {pool}) to {path}");
        return Ok(());
    }
    if let Some(trace_path) = args.get("trace") {
        return run_cluster(args, trace_path, seed, workers, swap_at, &metrics);
    }
    if args.get("nodes").is_some() {
        return Err("--nodes needs --trace FILE (record one with --trace-out)".into());
    }

    let boot = acic_from_args(args, seed, &metrics)?;
    let acic = boot.acic;

    let text = match args.get("replay") {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
        }
        None => {
            eprintln!("reading requests from stdin (one `<app> <procs> <goal> <k>` per line)...");
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).map_err(|e| e.to_string())?;
            s
        }
    };
    let requests: Vec<(String, Request)> = {
        let _span = metrics.span("phase.parse");
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .enumerate()
            .map(|(i, l)| parse_request_line(l).map_err(|e| format!("request {}: {e}", i + 1)))
            .collect::<Result<_, _>>()?
    };

    let cfg = ServeConfig {
        workers,
        queue_depth: args.parse_or("queue", 128)?,
        batch: args.parse_or("batch", 8)?,
        cache_capacity: args.parse_or("cache", 4096)?,
        ..Default::default()
    };
    let server = Server::from_acic(&acic, cfg, metrics.clone()).map_err(|e| e.to_string())?;
    let handle = server.handle();
    eprintln!(
        "serving with {workers} worker(s), queue depth {}, batch {} (snapshot v{}, {} points)",
        server.config().queue_depth,
        server.config().batch,
        server.version(),
        acic.db.len(),
    );

    // Pipelined submission; `--swap-at N` republishes an identically
    // retrained snapshot mid-replay while earlier requests are in flight,
    // and `--watch` hot-swaps whenever `acic publish` replaces the
    // snapshot file.
    let snapshot_path = args.get("snapshot");
    let mut watched = snapshot_path
        .filter(|_| watch)
        .map(|p| PublishedSnapshot::read(Path::new(p)).map(|s| (s.hash, s.seed, s.model)))
        .transpose()
        .map_err(|e| e.to_string())?;
    let pending: Vec<Pending> = {
        let _span = metrics.span("phase.replay");
        let mut out = Vec::with_capacity(requests.len());
        for (i, (_, req)) in requests.iter().enumerate() {
            if i == swap_at {
                let _swap = metrics.span("phase.swap");
                let retrained = Predictor::train_with(&acic.db, boot.seed, boot.model)
                    .map_err(|e| e.to_string())?;
                let v = server.publish(retrained, acic.db.len());
                eprintln!("hot-swapped to snapshot v{v} after {i} submissions");
            }
            if let (Some(path), Some(last)) = (snapshot_path, watched.as_mut()) {
                // A republished file changes its (hash, seed, model)
                // identity; an incremental no-op publish changes nothing
                // and is skipped here too.
                let snap = PublishedSnapshot::read(Path::new(path)).map_err(|e| e.to_string())?;
                let id = (snap.hash, snap.seed, snap.model);
                if id != *last {
                    let _swap = metrics.span("phase.swap");
                    let db = snap.to_training_db();
                    let retrained = Predictor::train_with(&db, snap.seed, snap.model)
                        .map_err(|e| e.to_string())?;
                    let v = server.publish(retrained, db.len());
                    *last = id;
                    eprintln!(
                        "watched snapshot changed (hash {:016x}); hot-swapped to v{v} after {i} \
                         submissions",
                        snap.hash
                    );
                }
            }
            out.push(handle.submit_blocking(*req).map_err(|e| e.to_string())?);
        }
        out
    };

    // Answers print strictly in request order regardless of which worker
    // (or snapshot) served them.
    for (i, ((label, _), pend)) in requests.iter().zip(pending).enumerate() {
        let resp = pend.wait().map_err(|e| e.to_string())?;
        let ranked: Vec<String> =
            resp.top.iter().map(|(c, imp)| format!("{}={imp:.6}", c.notation())).collect();
        println!("{}. {label}: {}", i + 1, ranked.join(" "));
    }
    println!("# served {} requests, shed {}", requests.len(), server.shed_count());

    let (hits, misses, rate) = server.cache_stats();
    eprintln!(
        "cache: {hits} hits / {misses} misses ({:.0}% hit rate), final snapshot v{}",
        rate * 100.0,
        server.version()
    );
    if args.flag("report") {
        eprint!("{}", metrics.render());
    }
    server.shutdown();
    Ok(())
}

/// Cluster mode: replay a recorded trace through an `--nodes`-node
/// cluster-in-a-process.  Stdout carries only node-count-invariant facts
/// (the digest and the answered/shed counts); per-node diagnostics go to
/// stderr.
fn run_cluster(
    args: &Args,
    trace_path: &str,
    seed: u64,
    workers: usize,
    swap_at: usize,
    metrics: &Metrics,
) -> Result<(), String> {
    let nodes: usize = args.parse_or("nodes", 1)?;
    let text =
        std::fs::read_to_string(trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    let requests = {
        let _span = metrics.span("phase.parse");
        harness::parse_trace(&text).map_err(|e| format!("{trace_path}: {e}"))?
    };

    let boot = acic_from_args(args, seed, metrics)?;
    // The model artifact every node replicates: self-describing samples +
    // seed + model kind, verified per node against its content hash.
    let artifact = PublishedSnapshot::from_db(&boot.acic.db, boot.seed, boot.model);
    let cfg = ClusterConfig {
        nodes,
        node: ServeConfig {
            workers,
            queue_depth: args.parse_or("queue", 128)?,
            batch: args.parse_or("batch", 8)?,
            cache_capacity: args.parse_or("cache", 4096)?,
            ..Default::default()
        },
    };
    let mut cluster =
        Cluster::start(artifact, cfg, metrics.clone()).map_err(|e| e.to_string())?;
    eprintln!(
        "cluster: {nodes} node(s) x {workers} worker(s), {} requests from {trace_path}, \
         {} snapshot replicas verified",
        requests.len(),
        cluster.metrics().counter("cluster.snapshots_verified"),
    );

    let kill = match args.get("kill-node") {
        Some(raw) => {
            let node: u32 = raw.parse().map_err(|_| format!("bad --kill-node {raw:?}"))?;
            let kill_at: usize = args.parse_or("kill-at", requests.len() / 3)?;
            let rejoin_at: usize = args.parse_or("rejoin-at", 2 * requests.len() / 3)?;
            if rejoin_at < kill_at {
                return Err(format!("--rejoin-at {rejoin_at} is before --kill-at {kill_at}"));
            }
            Some(KillPlan { node: NodeId(node), kill_at, rejoin_at })
        }
        None => None,
    };
    let replay_out = args.get("replay-out");
    let opts = ReplayOptions {
        window: args.parse_or("window", ReplayOptions::DEFAULT_WINDOW)?,
        kill,
        republish_at: (swap_at < requests.len()).then_some(swap_at),
        collect_responses: replay_out.is_some(),
        ..Default::default()
    };
    let outcome = {
        let _span = metrics.span("phase.replay");
        harness::replay(&mut cluster, requests.len(), |i| requests[i], &opts)
            .map_err(|e| e.to_string())?
    };

    if let Some(path) = replay_out {
        let mut rendered = String::new();
        for (index, payload) in &outcome.responses {
            rendered.push_str(&format!("{index}\t{payload}\n"));
        }
        std::fs::write(path, rendered).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} answered-response lines to {path}", outcome.responses.len());
    }
    // Stdout: node-count-invariant facts only — the tier-1 gate byte-diffs
    // this across --nodes 1/2/4.
    println!("digest={:016x}", outcome.digest);
    println!("answered={} shed={}", outcome.answered, outcome.shed.len());
    eprintln!(
        "cluster served {} (shed {}), generation {}, verified {} replicas ({} failures)",
        cluster.served_count(),
        cluster.shed_count(),
        cluster.generation(),
        cluster.metrics().counter("cluster.snapshots_verified"),
        cluster.metrics().counter("cluster.snapshot_verify_failures"),
    );
    if args.flag("report") {
        eprint!("{}", metrics.render());
    }
    cluster.shutdown();
    Ok(())
}
