//! `acic walk` — PB-guided (or random) greedy space walking.

use crate::args::Args;
use crate::commands::goal;
use crate::registry::app_by_name;
use acic::profile::app_point_from;
use acic::Trainer;
use acic_search::{guided_walk, random_walk};
use acic_apps::profile;

pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["app", "procs", "goal", "random", "seed"])?;
    let app_name = args.get("app").ok_or("--app is required")?;
    let procs: usize = args.parse_or("procs", 64)?;
    let seed: u64 = args.parse_or("seed", 20131117)?;
    let objective = goal(args)?;
    let model = app_by_name(app_name, procs)?;

    let chars = profile(&model.trace()).ok_or("application performs no I/O")?;
    let point = app_point_from(&chars);

    let outcome = if args.flag("random") {
        random_walk(&point, objective, seed).map_err(|e| e.to_string())?
    } else {
        let ranking = Trainer::with_paper_ranking(seed).ranking;
        guided_walk(&ranking, &point, objective, seed).map_err(|e| e.to_string())?
    };

    println!(
        "{} walk for {}-{procs} ({objective} goal):",
        if args.flag("random") { "random-order" } else { "PB-guided" },
        model.name()
    );
    println!("  chosen configuration : {}", outcome.config.notation());
    println!("  probe runs spent     : {}", outcome.runs);
    println!("  probe cost           : ${:.2} (simulated)", outcome.cost_usd);
    println!("  best probed metric   : {:.3}", outcome.best_metric);
    Ok(())
}
