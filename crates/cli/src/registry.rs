//! Application registry: map `--app <name> --procs <n>` to a workload
//! model.

use acic_apps::{AppModel, Btio, FlashIo, MadBench2, MpiBlast};

/// Names accepted by `--app`.
pub const APP_NAMES: [&str; 4] = ["btio", "flashio", "mpiblast", "madbench2"];

/// Instantiate an application model by name and scale.
pub fn app_by_name(name: &str, procs: usize) -> Result<Box<dyn AppModel>, String> {
    if procs == 0 {
        return Err("--procs must be positive".into());
    }
    Ok(match name.to_ascii_lowercase().as_str() {
        "btio" => Box::new(Btio::class_c(procs)),
        "flashio" => Box::new(FlashIo::paper(procs)),
        "mpiblast" => Box::new(MpiBlast::paper(procs)),
        "madbench2" | "madbench" => Box::new(MadBench2::paper(procs)),
        other => {
            return Err(format!(
                "unknown application {other:?} (expected one of {})",
                APP_NAMES.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_names_resolve() {
        for name in APP_NAMES {
            let m = app_by_name(name, 64).unwrap();
            assert_eq!(m.nprocs(), 64);
        }
        assert!(app_by_name("madbench", 64).is_ok(), "alias accepted");
    }

    #[test]
    fn unknown_name_and_zero_procs_rejected() {
        assert!(app_by_name("nope", 64).is_err());
        assert!(app_by_name("btio", 0).is_err());
    }
}
