//! `acic` — the command-line face of the reproduction, mirroring the
//! tooling the paper released ("users can download the shared training
//! data, build the prediction model, use our provided tool to obtain I/O
//! characteristics from their applications, run the prediction, and
//! configure EC2 to deploy the recommended I/O configuration", §1).
//!
//! ```text
//! acic screen     [--goal perf|cost] [--seed N]
//! acic train      [--dims N] [--seed N] [--out db.txt] [--store DIR]
//!                 [--search pb|bandit|halving --budget N [--warm-start DIR]]
//! acic publish    --store DIR --out snap.txt [--model ..] [--force]
//! acic recommend  --app NAME --procs N [--db db.txt|--snapshot FILE|--dims N] [--goal ..] [--top K]
//! acic profile    --app NAME --procs N [--trace file] [--emit-trace file]
//! acic walk       --app NAME --procs N [--goal ..] [--random] [--seed N]
//! acic sweep      --app NAME --procs N [--goal ..]
//! acic serve      [--db db.txt|--dims N] [--workers N] [--replay file] [--swap-at N]
//!                 [--nodes N --trace file] [--trace-out file] [--kill-node I]
//! ```

mod args;
mod commands;
mod registry;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let result = match parsed.command.as_deref() {
        Some("screen") => commands::screen::run(&parsed),
        Some("train") => commands::train::run(&parsed),
        Some("publish") => commands::publish::run(&parsed),
        Some("recommend") => commands::recommend::run(&parsed),
        Some("profile") => commands::profile::run(&parsed),
        Some("ior") => commands::ior::run(&parsed),
        Some("walk") => commands::walk::run(&parsed),
        Some("sweep") => commands::sweep::run(&parsed),
        Some("serve") => commands::serve::run(&parsed),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", commands::USAGE)),
    };

    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
