//! IOR command-line compatibility: parse the classic `IOR` option string
//! into an [`IorConfig`], so recipes written for the real benchmark (the
//! paper trained with "the synthetic yet expressive parallel I/O benchmark
//! IOR") drive the simulated one unchanged.
//!
//! Supported options (the subset ACIC's training uses):
//!
//! ```text
//! -a API        POSIX | MPIIO | HDF5 | NCMPI
//! -b SIZE       block size per task per iteration (data size), e.g. 16m, 1g
//! -t SIZE       transfer size (request size), e.g. 256k, 4m
//! -i N          repetitions (iteration count)
//! -w / -r       write / read (last one wins as the phase type)
//! -c            collective I/O
//! -F            file-per-process (absence = shared file)
//! -z            random task ordering ≈ random access (our extension)
//! -N/-n N       number of tasks
//! ```

use crate::config::IorConfig;
use acic_fsim::{Access, IoApi, IoOp};

/// Parse a size literal like `256k`, `4m`, `1g`, or plain bytes.
pub fn parse_size(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024.0),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024.0 * 1024.0),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1024.0 * 1024.0 * 1024.0),
        _ => (s, 1.0),
    };
    let v: f64 = num.parse().map_err(|_| format!("invalid size literal {s:?}"))?;
    if v <= 0.0 {
        return Err(format!("size must be positive: {s:?}"));
    }
    Ok(v * mult)
}

/// Parse an IOR-style option string into a configuration.  Unknown flags
/// are rejected (typos in benchmark scripts should not silently change the
/// workload).
pub fn parse_ior_args(args: &str) -> Result<IorConfig, String> {
    // Start from IOR's own defaults (POSIX, 1 MiB blocks, 256 KiB
    // transfers, one repetition, independent writes to a shared file).
    let mut cfg = IorConfig {
        nprocs: 64,
        io_procs: 64,
        api: IoApi::Posix,
        iterations: 1,
        data_size: 1024.0 * 1024.0,
        request_size: 256.0 * 1024.0,
        op: IoOp::Write,
        collective: false,
        shared_file: true,
        access: Access::Sequential,
    };
    let mut shared = true;
    let mut tokens = args.split_whitespace().peekable();

    let value = |tokens: &mut std::iter::Peekable<std::str::SplitWhitespace>,
                     flag: &str|
     -> Result<String, String> {
        tokens
            .next()
            .map(str::to_string)
            .ok_or_else(|| format!("flag {flag} needs a value"))
    };

    while let Some(tok) = tokens.next() {
        match tok {
            "-a" => {
                cfg.api = match value(&mut tokens, "-a")?.to_ascii_uppercase().as_str() {
                    "POSIX" => IoApi::Posix,
                    "MPIIO" => IoApi::MpiIo,
                    "HDF5" => IoApi::Hdf5,
                    "NCMPI" => IoApi::NetCdf,
                    other => return Err(format!("unknown API {other:?}")),
                };
            }
            "-b" => cfg.data_size = parse_size(&value(&mut tokens, "-b")?)?,
            "-t" => cfg.request_size = parse_size(&value(&mut tokens, "-t")?)?,
            "-i" => {
                cfg.iterations = value(&mut tokens, "-i")?
                    .parse()
                    .map_err(|_| "invalid -i value".to_string())?;
            }
            "-N" | "-n" => {
                let n: usize = value(&mut tokens, tok)?
                    .parse()
                    .map_err(|_| format!("invalid {tok} value"))?;
                cfg.nprocs = n;
                cfg.io_procs = n;
            }
            "-w" => cfg.op = IoOp::Write,
            "-r" => cfg.op = IoOp::Read,
            "-c" => cfg.collective = true,
            "-F" => shared = false,
            "-z" => cfg.access = Access::Random,
            other => return Err(format!("unsupported IOR option {other:?}")),
        }
    }
    cfg.shared_file = shared;
    // POSIX cannot do collective; IOR itself would reject the combination.
    if cfg.collective && !cfg.api.supports_collective() {
        return Err("collective (-c) requires an MPI-IO-based API".into());
    }
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_cloudsim::units::mib;

    #[test]
    fn parses_a_typical_training_line() {
        let cfg = parse_ior_args("-a MPIIO -b 16m -t 4m -i 10 -w -c -N 64").unwrap();
        assert_eq!(cfg.api, IoApi::MpiIo);
        assert_eq!(cfg.data_size, mib(16.0));
        assert_eq!(cfg.request_size, mib(4.0));
        assert_eq!(cfg.iterations, 10);
        assert_eq!(cfg.op, IoOp::Write);
        assert!(cfg.collective);
        assert!(cfg.shared_file);
        assert_eq!(cfg.nprocs, 64);
    }

    #[test]
    fn file_per_process_and_read_mode() {
        let cfg = parse_ior_args("-a POSIX -b 1g -t 1m -r -F -n 32").unwrap();
        assert!(!cfg.shared_file);
        assert_eq!(cfg.op, IoOp::Read);
        assert_eq!(cfg.data_size, 1024.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn random_access_extension_flag() {
        let cfg = parse_ior_args("-a POSIX -b 64m -t 1m -r -z").unwrap();
        assert_eq!(cfg.access, Access::Random);
        let cfg = parse_ior_args("-a POSIX -b 64m -t 1m -r").unwrap();
        assert_eq!(cfg.access, Access::Sequential);
    }

    #[test]
    fn size_literals() {
        assert_eq!(parse_size("256k").unwrap(), 262144.0);
        assert_eq!(parse_size("4M").unwrap(), 4194304.0);
        assert_eq!(parse_size("2g").unwrap(), 2147483648.0);
        assert_eq!(parse_size("12345").unwrap(), 12345.0);
        assert!(parse_size("banana").is_err());
        assert!(parse_size("-4m").is_err());
    }

    #[test]
    fn rejects_garbage_and_invalid_combinations() {
        assert!(parse_ior_args("-q 5").is_err(), "unknown flag");
        assert!(parse_ior_args("-b").is_err(), "missing value");
        assert!(parse_ior_args("-a POSIX -c -b 16m -t 4m").is_err(), "POSIX collective");
        assert!(parse_ior_args("-a MPIIO -b 1m -t 16m -w").is_err(), "request > data");
    }

    #[test]
    fn empty_line_gives_ior_defaults() {
        let cfg = parse_ior_args("").unwrap();
        assert_eq!(cfg.api, IoApi::Posix);
        assert_eq!(cfg.iterations, 1);
        assert_eq!(cfg.data_size, 1024.0 * 1024.0);
        assert_eq!(cfg.request_size, 256.0 * 1024.0);
        assert!(!cfg.collective);
        assert!(cfg.shared_file);
        assert!(cfg.validate().is_ok());
    }
}
