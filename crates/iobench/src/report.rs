//! Benchmark run reports.

use acic_fsim::RunOutcome;

/// Result of one IOR run on one I/O system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IorReport {
    /// The underlying phase-level outcome.
    pub outcome: RunOutcome,
    /// Aggregate achieved bandwidth, bytes/second (total bytes ÷ I/O time).
    pub bandwidth_bps: f64,
    /// Monetary cost of the run by the paper's eq. (1), USD.
    pub cost: f64,
    /// Billed instance count.
    pub instances: usize,
}

impl IorReport {
    /// Execution time in seconds (the paper's performance metric).
    pub fn secs(&self) -> f64 {
        self.outcome.total_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_mirrors_outcome() {
        let r = IorReport {
            outcome: RunOutcome {
                total_secs: 12.5,
                io_secs: 12.5,
                compute_secs: 0.0,
                phase_secs: vec![12.5],
                faults: 0,
                fault_secs: 0.0,
            },
            bandwidth_bps: 1e9,
            cost: 0.1,
            instances: 4,
        };
        assert_eq!(r.secs(), 12.5);
    }
}
