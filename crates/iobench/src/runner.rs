//! Execute an IOR configuration on an I/O system.

use crate::config::IorConfig;
use crate::report::IorReport;
use acic_cloudsim::error::CloudSimError;
use acic_cloudsim::pricing::CostModel;
use acic_fsim::{Executor, FaultPlan, IoSystem};

/// Run `cfg` on `system` with the given seed and no fault injection.
///
/// Returns [`CloudSimError::InvalidCluster`] for invalid benchmark
/// configurations so callers can treat configuration and cluster errors
/// uniformly when sweeping large spaces.
pub fn run_ior(system: &IoSystem, cfg: &IorConfig, seed: u64) -> Result<IorReport, CloudSimError> {
    run_ior_faulted(system, cfg, seed, FaultPlan::NONE)
}

/// Run `cfg` on `system` under a failure-injection plan (paper §5.6
/// observation 5).  Tolerated connection losses show up as extra time in
/// the report; corrupting losses surface as
/// [`CloudSimError::InjectedFault`] and must be retried by the caller.
pub fn run_ior_faulted(
    system: &IoSystem,
    cfg: &IorConfig,
    seed: u64,
    faults: FaultPlan,
) -> Result<IorReport, CloudSimError> {
    cfg.validate().map_err(CloudSimError::InvalidCluster)?;
    let outcome = Executor::new(*system).with_faults(faults).run(&cfg.workload(), seed)?;
    let instances = system.cluster.total_instances();
    let cost = CostModel::default().linear_cost(
        outcome.total_secs,
        instances,
        system.cluster.instance_type,
    );
    let bandwidth_bps = if outcome.io_secs > 0.0 {
        cfg.total_bytes() / outcome.io_secs
    } else {
        0.0
    };
    Ok(IorReport { outcome, bandwidth_bps, cost, instances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_cloudsim::cluster::{ClusterSpec, Placement};
    use acic_cloudsim::device::DeviceKind;
    use acic_cloudsim::instance::InstanceType;
    use acic_cloudsim::raid::Raid0;
    use acic_cloudsim::units::mib;
    use acic_fsim::{FsConfig, IoOp};

    fn system(fs: FsConfig, io_servers: usize, placement: Placement) -> IoSystem {
        IoSystem {
            cluster: ClusterSpec::for_procs(
                InstanceType::Cc2_8xlarge,
                64,
                io_servers,
                placement,
                Raid0::new(DeviceKind::Ephemeral, 4),
            ),
            fs,
        }
    }

    #[test]
    fn runs_and_reports_cost_and_bandwidth() {
        let sys = system(FsConfig::pvfs2(mib(4.0)), 4, Placement::Dedicated);
        let rep = run_ior(&sys, &IorConfig::default(), 1).unwrap();
        assert!(rep.secs() > 0.0);
        assert!(rep.bandwidth_bps > 0.0);
        assert!(rep.cost > 0.0);
        assert_eq!(rep.instances, 8, "4 compute + 4 dedicated I/O instances");
    }

    #[test]
    fn parttime_is_cheaper_per_second() {
        let cfg = IorConfig::default();
        let ded = run_ior(&system(FsConfig::pvfs2(mib(4.0)), 4, Placement::Dedicated), &cfg, 1)
            .unwrap();
        let part = run_ior(&system(FsConfig::pvfs2(mib(4.0)), 4, Placement::PartTime), &cfg, 1)
            .unwrap();
        assert_eq!(part.instances, 4);
        let ded_rate = ded.cost / ded.secs();
        let part_rate = part.cost / part.secs();
        assert!(part_rate < ded_rate, "fewer instances, lower $/s");
    }

    #[test]
    fn invalid_config_is_reported_as_error() {
        let sys = system(FsConfig::nfs(), 1, Placement::Dedicated);
        let bad = IorConfig { request_size: mib(64.0), data_size: mib(1.0), ..Default::default() };
        assert!(run_ior(&sys, &bad, 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = system(FsConfig::pvfs2(mib(4.0)), 2, Placement::Dedicated);
        let a = run_ior(&sys, &IorConfig::default(), 11).unwrap();
        let b = run_ior(&sys, &IorConfig::default(), 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_are_slower_than_cached_writes_on_nfs() {
        // Cold reads must come off the device; async writes are absorbed.
        let sys = system(FsConfig::nfs(), 1, Placement::Dedicated);
        let wr = IorConfig { op: IoOp::Write, collective: false, ..Default::default() };
        let rd = IorConfig { op: IoOp::Read, collective: false, ..Default::default() };
        let t_wr = run_ior(&sys, &wr, 5).unwrap().secs();
        let t_rd = run_ior(&sys, &rd, 5).unwrap().secs();
        assert!(t_rd > t_wr, "cold read {t_rd} vs cached write {t_wr}");
    }
}
