//! # acic-iobench — an IOR workalike for reusable training
//!
//! ACIC trains on the synthetic IOR benchmark because it is "generic,
//! highly configurable, and open-source" and "can be configured to mimic
//! different applications' I/O behavior" (paper §2, §3.2).  This crate is
//! the equivalent for the simulated cloud: an [`IorConfig`] carries exactly
//! the nine application-characteristic parameters of Table 1, expands into
//! a [`acic_fsim::Workload`], and [`run_ior`] executes it on a configured
//! I/O system, reporting time, aggregate bandwidth, and monetary cost.

pub mod cli_compat;
pub mod config;
pub mod report;
pub mod runner;

pub use cli_compat::{parse_ior_args, parse_size};
pub use config::IorConfig;
pub use report::IorReport;
pub use runner::{run_ior, run_ior_faulted};
