//! The IOR-style benchmark configuration: the application half of the
//! Table 1 exploration space.

use acic_fsim::{IoApi, IoOp, IoPhase, Phase, Workload};

/// A synthetic benchmark run description (paper §3.2's nine application
/// I/O-characteristic parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IorConfig {
    /// Total number of processes (Table 1: {32, 64, 128, 256}).
    pub nprocs: usize,
    /// Processes performing I/O simultaneously ({32, 64, 128, 256}).
    pub io_procs: usize,
    /// I/O interface ({POSIX, MPI-IO} in training; HDF5/netCDF supported).
    pub api: IoApi,
    /// Number of I/O iterations ({1, 10, 100}).
    pub iterations: usize,
    /// Bytes each I/O process moves per iteration ({1..512} MB).
    pub data_size: f64,
    /// Bytes per I/O call ({256 KB, 4 MB, 16 MB, 128 MB}).
    pub request_size: f64,
    /// Read or write.
    pub op: IoOp,
    /// Collective I/O on/off.
    pub collective: bool,
    /// Single shared file (true) vs per-process files (false).
    pub shared_file: bool,
    /// Access spatiality (our IOR extension beyond Table 1; the paper
    /// notes IOR "may need to be expanded if an application has I/O
    /// features that it does not test", §2).
    pub access: acic_fsim::Access,
}

impl IorConfig {
    /// Validate the configuration: the constraints of paper §3.3 ("request
    /// size cannot be greater than data size") plus basic sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.nprocs == 0 {
            return Err("nprocs must be positive".into());
        }
        if self.io_procs == 0 || self.io_procs > self.nprocs {
            return Err(format!(
                "io_procs must be in 1..={}, got {}",
                self.nprocs, self.io_procs
            ));
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if !(self.data_size.is_finite() && self.data_size > 0.0) {
            return Err(format!("data_size must be positive, got {}", self.data_size));
        }
        if !(self.request_size.is_finite() && self.request_size > 0.0) {
            return Err(format!("request_size must be positive, got {}", self.request_size));
        }
        if self.request_size > self.data_size {
            return Err(format!(
                "request size {} exceeds data size {}",
                self.request_size, self.data_size
            ));
        }
        if self.collective && !self.api.supports_collective() {
            return Err(format!("collective I/O is not available on {}", self.api));
        }
        Ok(())
    }

    /// Expand into a phase-level workload: `iterations` I/O bursts,
    /// back-to-back (IOR performs no computation between iterations).
    pub fn workload(&self) -> Workload {
        let io = IoPhase {
            io_procs: self.io_procs,
            access: self.access,
            per_proc_bytes: self.data_size,
            request_size: self.request_size,
            op: self.op,
            collective: self.collective,
            shared_file: self.shared_file,
            api: self.api,
        };
        Workload::new(self.nprocs, vec![Phase::Io(io); self.iterations])
    }

    /// Total bytes the benchmark moves.
    pub fn total_bytes(&self) -> f64 {
        self.data_size * self.io_procs as f64 * self.iterations as f64
    }
}

impl Default for IorConfig {
    /// A mid-range smoke configuration (not a Table 1 sample point).
    fn default() -> Self {
        use acic_cloudsim::units::mib;
        Self {
            nprocs: 64,
            io_procs: 64,
            api: IoApi::MpiIo,
            iterations: 10,
            data_size: mib(16.0),
            request_size: mib(4.0),
            op: IoOp::Write,
            collective: true,
            shared_file: true,
            access: acic_fsim::Access::Sequential,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_cloudsim::units::mib;

    #[test]
    fn default_is_valid() {
        assert!(IorConfig::default().validate().is_ok());
    }

    #[test]
    fn request_larger_than_data_rejected() {
        let cfg = IorConfig {
            data_size: mib(1.0),
            request_size: mib(4.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn io_procs_bounded_by_nprocs() {
        let cfg = IorConfig { nprocs: 32, io_procs: 64, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = IorConfig { nprocs: 32, io_procs: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn collective_posix_rejected() {
        let cfg = IorConfig { api: IoApi::Posix, collective: true, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = IorConfig { api: IoApi::Posix, collective: false, ..Default::default() };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn workload_has_one_phase_per_iteration() {
        let cfg = IorConfig { iterations: 7, ..Default::default() };
        let w = cfg.workload();
        assert_eq!(w.phases.len(), 7);
        assert_eq!(w.io_phase_count(), 7);
        assert_eq!(w.nprocs, 64);
    }

    #[test]
    fn total_bytes_accounts_iterations_and_procs() {
        let cfg = IorConfig {
            iterations: 10,
            io_procs: 64,
            data_size: mib(16.0),
            ..Default::default()
        };
        assert_eq!(cfg.total_bytes(), 10.0 * 64.0 * mib(16.0));
    }

    #[test]
    fn zero_iterations_rejected() {
        let cfg = IorConfig { iterations: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }
}
