//! # acic-repro — umbrella crate for the ACIC (SC '13) reproduction
//!
//! Re-exports the whole workspace so the examples and integration tests
//! under the repository root can reach every subsystem through one
//! dependency.  See `README.md` for the tour and `DESIGN.md` for the
//! system inventory.

pub use acic;
pub use acic_apps as apps;
pub use acic_cart as cart;
pub use acic_cloudsim as cloudsim;
pub use acic_fsim as fsim;
pub use acic_iobench as iobench;
pub use acic_pbdesign as pbdesign;
pub use acic_search as search;
